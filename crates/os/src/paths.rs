//! Kernel code paths: frame builders for system calls, faults and
//! interrupts, and the handlers for deferred [`KCall`] decision points.
//!
//! Every path is composed of instruction-fetch windows over the symbol
//! table of [`crate::layout`] plus data accesses to the kernel
//! structures of Table 3, so the misses the paper attributes to
//! structures and routines arise mechanistically from execution.

use oscar_machine::addr::{CpuId, PAddr, Ppn, Vpn, PAGE_SIZE};
use oscar_machine::machine::Machine;
use oscar_rng::Rng;

use crate::exec::{Chan, Disposition, KCall, KFrame, KOp, PageInit, DISK_NO_BUF};
use crate::fs::GetBlk;
use crate::instrument::{BlockOpKind, OsEvent};
use crate::kernel::{FrameLoc, OsWorld};
use crate::layout::{sizes, Rid};
use crate::locks::{LockFamily, LockId};
use crate::proc::{ProcState, Pte};
use crate::types::{AttrCtx, OpClass, ProcSlot};
use crate::user::{segs, ExecImage, SysReq};
use crate::vm::{FrameAlloc, FrameUse};

fn runqlk(queue: usize) -> LockId {
    LockId::new(LockFamily::Runqlk, queue as u32)
}
const MEMLOCK: LockId = LockId {
    family: LockFamily::Memlock,
    instance: 0,
};
const IFREE: LockId = LockId {
    family: LockFamily::Ifree,
    instance: 0,
};
const DFBMAPLK: LockId = LockId {
    family: LockFamily::Dfbmaplk,
    instance: 0,
};
const BFREELOCK: LockId = LockId {
    family: LockFamily::Bfreelock,
    instance: 0,
};
const CALOCK: LockId = LockId {
    family: LockFamily::Calock,
    instance: 0,
};

fn ino_lock(inode: u32) -> LockId {
    LockId::new(LockFamily::Ino, inode % sizes::NINODE as u32)
}

fn shr_lock(slot: ProcSlot) -> LockId {
    LockId::new(LockFamily::Shr, slot.0 as u32)
}

/// Shared-memory vpn convention: segment `s` occupies a 4 MB window at
/// `SHM_BASE + 4s MB` (1024 pages per segment).
fn shm_seg_of(vpn: Vpn) -> (u32, u32) {
    let rel = vpn.0 - segs::SHM_BASE.page().0;
    (rel / 1024, rel % 1024)
}

/// Virtual base page of shared segment `seg`.
pub fn shm_base_vpn(seg: u32) -> Vpn {
    Vpn(segs::SHM_BASE.page().0 + seg * 1024)
}

impl OsWorld {
    // ----- small op-sequence helpers -------------------------------

    fn pt_entry_addr(&self, slot: ProcSlot, vpn: Vpn) -> PAddr {
        self.layout
            .page_table(slot)
            .add(((vpn.0 as u64) % (sizes::PAGE_TABLE / 4)) * 4)
    }

    fn eframe_target(&self, cpu: CpuId) -> PAddr {
        match self.cpus[cpu.index()].running {
            Some(slot) => self.layout.eframe(slot),
            // Interrupts in the idle loop save into a per-CPU area of
            // the kernel globals.
            None => self.layout.misc_data().add(256 * cpu.index() as u64),
        }
    }

    fn eframe_save_ops(&self, target: PAddr) -> Vec<KOp> {
        vec![
            KOp::Escape(OsEvent::CtxEnter(AttrCtx::LowLevelException)),
            self.win(Rid::VecGeneral),
            self.win(Rid::ExcSave),
            KOp::sweep(target, sizes::EFRAME, 16, true),
            KOp::Escape(OsEvent::CtxExit),
        ]
    }

    /// Kernel-stack activity at handler entry: frames pushed for locals
    /// and saved registers (a prime migration-miss source in the paper).
    fn kstack_ops(&self, slot: ProcSlot, write: bool) -> Vec<KOp> {
        vec![KOp::sweep(
            self.layout.kernel_stack(slot).add(1024),
            192,
            16,
            write,
        )]
    }

    fn eframe_restore_ops(&self, target: PAddr) -> Vec<KOp> {
        vec![
            KOp::Escape(OsEvent::CtxEnter(AttrCtx::LowLevelException)),
            self.win(Rid::ExcRestore),
            KOp::sweep(target, sizes::EFRAME, 16, false),
            KOp::Escape(OsEvent::CtxExit),
        ]
    }

    fn syscall_prologue(&mut self, slot: ProcSlot) -> Vec<KOp> {
        let mut ops = self.eframe_save_ops(self.layout.eframe(slot));
        ops.extend(self.kstack_ops(slot, true));
        ops.push(self.win_part(Rid::TrapDispatch, 0, 2));
        ops.push(self.win(Rid::SyscallEntry));
        // Argument validation / accounting: branchy low-density code.
        ops.push(self.cold_win(Rid::ColdMisc, 1536));
        ops.push(KOp::read(self.layout.u_rest(slot).add(8)));
        // Credential checks and accounting touch the proc entry — a
        // sharing-miss source when the process migrates.
        ops.push(KOp::read(self.layout.proc_entry(slot).add(8)));
        ops.push(KOp::write(self.layout.proc_entry(slot).add(200)));
        ops
    }

    fn syscall_epilogue(&self, slot: ProcSlot) -> Vec<KOp> {
        let mut ops = vec![
            self.win(Rid::SyscallExit),
            KOp::write(self.layout.u_rest(slot).add(16)),
            KOp::read(self.layout.proc_entry(slot).add(72)),
            KOp::write(self.layout.kernel_stack(slot).add(128)),
            KOp::read(self.layout.kernel_stack(slot).add(128)),
        ];
        ops.extend(self.eframe_restore_ops(self.layout.eframe(slot)));
        ops
    }

    /// `setrq` operations for one enqueue (the caller holds `Runqlk`).
    fn setrq_body_ops(&self, target: ProcSlot) -> Vec<KOp> {
        vec![
            self.win(Rid::Setrq),
            KOp::write(self.layout.run_queue()),
            KOp::write(self.layout.proc_entry(target).add(16)),
            KOp::write(self.layout.proc_entry(target).add(32)),
        ]
    }

    /// Block copy: the `bcopy` routine sweeping `bytes` from `src` to
    /// `dst` (or a cache-bypassing transfer under the ablation knob).
    pub(crate) fn bcopy_ops(&mut self, src: PAddr, dst: PAddr, bytes: u64) -> Vec<KOp> {
        self.stats.count_block_op(BlockOpKind::Copy, bytes);
        let mut ops = vec![
            KOp::Escape(OsEvent::CtxEnter(AttrCtx::BlockCopy)),
            KOp::Escape(OsEvent::BlockOp {
                kind: BlockOpKind::Copy,
                bytes: bytes as u32,
            }),
            self.win(Rid::Bcopy),
        ];
        if self.tuning.block_op_bypass {
            // Pay the transfer latency without polluting the caches.
            ops.push(KOp::Compute {
                cycles: 10 + (bytes / 16) * 9,
            });
        } else {
            ops.push(KOp::sweep(src, bytes, 16, false));
            ops.push(KOp::sweep(dst, bytes, 16, true));
        }
        ops.push(KOp::Escape(OsEvent::CtxExit));
        ops
    }

    /// Block clear: the `bzero` routine sweeping `bytes` at `dst`.
    pub(crate) fn bclear_ops(&mut self, dst: PAddr, bytes: u64) -> Vec<KOp> {
        self.stats.count_block_op(BlockOpKind::Clear, bytes);
        let mut ops = vec![
            KOp::Escape(OsEvent::CtxEnter(AttrCtx::BlockClear)),
            KOp::Escape(OsEvent::BlockOp {
                kind: BlockOpKind::Clear,
                bytes: bytes as u32,
            }),
            self.win(Rid::Bclear),
        ];
        if self.tuning.block_op_bypass {
            ops.push(KOp::Compute {
                cycles: 8 + (bytes / 16) * 6,
            });
        } else {
            ops.push(KOp::sweep(dst, bytes, 16, true));
        }
        ops.push(KOp::Escape(OsEvent::CtxExit));
        ops
    }

    /// Buffer-cache lookup ops. Returns the buffer index plus the
    /// operations (including disk I/O and sleep on a miss).
    /// `read_io` controls whether a miss reads the block from disk
    /// (false for whole-block overwrites).
    fn getblk_ops(&mut self, key: (u32, u32), read_io: bool) -> (usize, Vec<KOp>) {
        let hash = ((key.0 as u64 * 31 + key.1 as u64) % sizes::NBUF) as usize;
        let mut ops = vec![
            self.win(Rid::GetBlk),
            KOp::Lock(BFREELOCK),
            KOp::read(self.layout.buf_hdr(hash)),
            KOp::read(self.layout.buf_hdr((hash + 1) % sizes::NBUF as usize)),
        ];
        match self.bufcache.getblk(key) {
            GetBlk::Hit(b) => {
                self.stats.buffer_hits += 1;
                ops.push(KOp::read(self.layout.buf_hdr(b)));
                ops.push(KOp::Unlock(BFREELOCK));
                if self.bufcache.is_busy(b) {
                    // Another process's I/O is in flight; wait for it.
                    ops.push(self.win(Rid::BioWait));
                    ops.push(KOp::Call(KCall::Sleep { chan: Chan::Buf(b) }));
                }
                (b, ops)
            }
            GetBlk::Miss { buf, flushed_dirty } => {
                self.stats.buffer_misses += 1;
                ops.push(KOp::write(self.layout.buf_hdr(buf)));
                ops.push(KOp::Unlock(BFREELOCK));
                if flushed_dirty {
                    ops.push(self.win(Rid::BWrite));
                    ops.push(KOp::Call(KCall::DiskEnqueue {
                        buf: DISK_NO_BUF,
                        write: true,
                        seq: false,
                    }));
                }
                if read_io {
                    let seq = self.last_disk_key == Some((key.0, key.1.wrapping_sub(1)));
                    self.last_disk_key = Some(key);
                    ops.push(self.win(Rid::BRead));
                    ops.push(self.win_part(Rid::DkStrategy, 0, 1));
                    ops.push(self.win_part(Rid::ScsiCmd, 0, 2));
                    ops.push(self.cold_win(Rid::ColdDriver, 2048));
                    ops.push(KOp::Call(KCall::DiskEnqueue {
                        buf,
                        write: false,
                        seq,
                    }));
                    // breada: a sequential reader also schedules the
                    // next block asynchronously.
                    if self.tuning.read_ahead && seq {
                        let next = (key.0, key.1 + 1);
                        if !self.bufcache.probe(next) {
                            if let GetBlk::Miss {
                                buf: rbuf,
                                flushed_dirty,
                            } = self.bufcache.getblk(next)
                            {
                                self.stats.readaheads += 1;
                                ops.push(KOp::write(self.layout.buf_hdr(rbuf)));
                                if flushed_dirty {
                                    ops.push(KOp::Call(KCall::DiskEnqueue {
                                        buf: DISK_NO_BUF,
                                        write: true,
                                        seq: false,
                                    }));
                                }
                                ops.push(KOp::Call(KCall::DiskEnqueue {
                                    buf: rbuf,
                                    write: false,
                                    seq: true,
                                }));
                            }
                        }
                    }
                    ops.push(self.win(Rid::BioWait));
                    ops.push(KOp::Call(KCall::Sleep {
                        chan: Chan::Buf(buf),
                    }));
                } else {
                    self.bufcache.io_done(buf);
                }
                (buf, ops)
            }
        }
    }

    /// In-core inode activation ops (`iget`): every activation takes
    /// `Ifree`, which is why the paper finds it among the most
    /// frequently acquired locks.
    fn iget_ops(&mut self, inode: u32) -> Vec<KOp> {
        let addr = self.layout.inode(inode as usize % sizes::NINODE as usize);
        let mut ops = vec![self.win(Rid::IGet), KOp::Lock(IFREE), KOp::read(addr)];
        if !self.incore_inodes.contains_key(&inode) {
            if self.incore_inodes.len() >= sizes::NINODE as usize {
                // Steal the oldest in-core inode (deterministic enough).
                if let Some(&victim) = self.incore_inodes.keys().next() {
                    self.incore_inodes.remove(&victim);
                }
            }
            self.incore_inodes.insert(inode, inode as usize);
            ops.push(KOp::write(addr));
            ops.push(KOp::write(addr.add(64)));
            // Read the on-disk inode through the buffer cache.
            let (_, bops) = self.getblk_ops((u32::MAX - 1, inode / 16), true);
            ops.push(KOp::Unlock(IFREE));
            ops.extend(bops);
        } else {
            ops.push(KOp::write(addr.add(8)));
            ops.push(KOp::Unlock(IFREE));
        }
        ops
    }

    // ----- interrupt frames ----------------------------------------

    pub(crate) fn build_clock_frame(&mut self, cpu: CpuId) -> KFrame {
        let target = self.eframe_target(cpu);
        let mut ops = self.eframe_save_ops(target);
        ops.push(self.win(Rid::IntrDispatch));
        ops.push(self.win(Rid::ClockIntr));
        ops.push(self.cold_win(Rid::ColdMisc, 1024));
        ops.push(KOp::write(self.layout.misc_data().add(0)));
        ops.push(KOp::write(self.layout.misc_data().add(16)));
        ops.push(self.win(Rid::QuantumTick));
        ops.push(KOp::Call(KCall::ClockTick));
        ops.extend(self.eframe_restore_ops(target));
        KFrame::new(OpClass::Interrupt, ops)
    }

    /// An inter-CPU interrupt frame: the TLB-shootdown handler.
    pub(crate) fn build_ipi_frame(&mut self, cpu: CpuId) -> KFrame {
        let target = self.eframe_target(cpu);
        let mut ops = self.eframe_save_ops(target);
        ops.push(self.win(Rid::IntrDispatch));
        ops.push(self.win(Rid::TlbFlush));
        ops.push(KOp::read(self.layout.misc_data().add(96)));
        ops.extend(self.eframe_restore_ops(target));
        KFrame::new(OpClass::Interrupt, ops)
    }

    pub(crate) fn build_disk_frame(&mut self) -> KFrame {
        let cpu = self.disk_cpu;
        let target = self.eframe_target(cpu);
        let mut ops = self.eframe_save_ops(target);
        ops.push(self.win(Rid::IntrDispatch));
        ops.push(self.win_part(Rid::DkIntr, 0, 2));
        ops.push(self.win_part(Rid::ScsiDma, 0, 2));
        ops.push(self.cold_win(Rid::ColdDriver, 4096));
        ops.push(KOp::Call(KCall::DiskIntrDone));
        ops.extend(self.eframe_restore_ops(target));
        KFrame::new(OpClass::Interrupt, ops)
    }

    // ----- fault frames --------------------------------------------

    pub(crate) fn build_utlb_frame(&mut self, slot: ProcSlot, vpn: Vpn, write: bool) -> KFrame {
        if let Some(p) = &mut self.probes {
            p.utlb_refills += 1;
        }
        let ops = vec![
            self.win(Rid::VecUtlbMiss),
            KOp::read(self.pt_entry_addr(slot, vpn)),
            KOp::Call(KCall::TlbRefill { vpn: vpn.0, write }),
        ];
        KFrame::new(OpClass::UtlbFault, ops)
    }

    pub(crate) fn build_cow_fault_frame(&mut self, slot: ProcSlot, vpn: Vpn) -> KFrame {
        if let Some(p) = &mut self.probes {
            p.cow_faults += 1;
        }
        let src = self
            .procs
            .get(slot)
            .and_then(|p| p.page_table.get(&vpn))
            .map(|pte| pte.ppn.0)
            .expect("COW fault on unmapped page");
        let mut ops = self.eframe_save_ops(self.layout.eframe(slot));
        ops.push(self.win_part(Rid::TrapDispatch, 1, 2));
        ops.push(self.win(Rid::CowFault));
        ops.push(self.cold_win(Rid::ColdVm, 2048));
        ops.push(KOp::Lock(shr_lock(slot)));
        ops.push(KOp::read(self.pt_entry_addr(slot, vpn)));
        ops.push(KOp::Call(KCall::AllocPage {
            vpn: vpn.0,
            init: PageInit::CopyFrom(src),
        }));
        ops.push(KOp::Unlock(shr_lock(slot)));
        ops.extend(self.eframe_restore_ops(self.layout.eframe(slot)));
        KFrame::new(OpClass::ExpensiveTlbFault, ops)
    }

    // ----- system-call frames --------------------------------------

    /// Builds the kernel frame for a system call. Decisions that depend
    /// on kernel state (buffer hits, free inodes) are taken here, at
    /// trap time; decisions that depend on *future* state (I/O
    /// completion, child exits) become [`KCall`]s.
    pub(crate) fn build_syscall_frame(
        &mut self,
        _m: &mut Machine,
        _cpu: CpuId,
        slot: ProcSlot,
        req: SysReq,
    ) -> KFrame {
        match req {
            SysReq::Read { inode, bytes } => self.build_read(slot, inode, bytes, None),
            SysReq::Write { inode, bytes } => self.build_write(slot, inode, bytes, None, false),
            SysReq::SyncWrite { inode, bytes } => self.build_write(slot, inode, bytes, None, true),
            SysReq::ReadAt {
                inode,
                offset,
                bytes,
            } => self.build_read(slot, inode, bytes, Some(offset)),
            SysReq::WriteAt {
                inode,
                offset,
                bytes,
            } => self.build_write(slot, inode, bytes, Some(offset), false),
            SysReq::Open { inode, components } => self.build_open(slot, inode, components),
            SysReq::Close { inode } => self.build_close(slot, inode),
            SysReq::Sginap => {
                let mut ops = self.eframe_save_ops(self.layout.eframe(slot));
                ops.push(self.win(Rid::SyscallEntry));
                ops.push(self.win(Rid::SginapSys));
                ops.push(KOp::Call(KCall::Swtch(Disposition::Requeue)));
                ops.push(self.win(Rid::SyscallExit));
                ops.extend(self.eframe_restore_ops(self.layout.eframe(slot)));
                KFrame::new(OpClass::Sginap, ops)
            }
            SysReq::Fork { child } => {
                if let Some(p) = self.procs.get_mut(slot) {
                    p.pending_child = Some(child);
                }
                let mut ops = self.syscall_prologue(slot);
                ops.push(self.win(Rid::ForkSys));
                ops.push(self.cold_win(Rid::ColdMisc, 4096));
                ops.push(KOp::Call(KCall::ForkChild));
                ops.extend(self.syscall_epilogue(slot));
                KFrame::new(OpClass::OtherSyscall, ops)
            }
            SysReq::Exec { image } => {
                let mut ops = self.syscall_prologue(slot);
                let kstack = self.layout.kernel_stack(slot);
                let argsrc = self.user_io_buffer(slot, 0);
                ops.extend(self.bcopy_ops(argsrc, kstack.add(512), 192));
                ops.push(self.win(Rid::ExecSys));
                ops.push(self.cold_win(Rid::ColdMisc, 6144));
                ops.extend(self.iget_ops(image.inode));
                ops.push(KOp::Call(KCall::ExecReplace { image }));
                ops.extend(self.syscall_epilogue(slot));
                KFrame::new(OpClass::OtherSyscall, ops)
            }
            SysReq::Exit => {
                let mut ops = self.eframe_save_ops(self.layout.eframe(slot));
                ops.push(self.win_part(Rid::TrapDispatch, 0, 2));
                ops.push(self.win(Rid::SyscallEntry));
                ops.push(self.win(Rid::ExitSys));
                ops.push(KOp::Call(KCall::ExitFinish));
                ops.push(KOp::Call(KCall::Swtch(Disposition::Exit)));
                KFrame::new(OpClass::OtherSyscall, ops)
            }
            SysReq::Wait => {
                let mut ops = self.syscall_prologue(slot);
                ops.push(self.win(Rid::WaitSys));
                ops.push(KOp::Call(KCall::WaitCheck));
                ops.extend(self.syscall_epilogue(slot));
                KFrame::new(OpClass::OtherSyscall, ops)
            }
            SysReq::Brk { pages: _ } => {
                let mut ops = self.syscall_prologue(slot);
                ops.push(self.win(Rid::BrkSys));
                ops.push(self.win(Rid::GrowReg));
                ops.push(KOp::write(self.layout.u_rest(slot).add(64)));
                ops.extend(self.syscall_epilogue(slot));
                KFrame::new(OpClass::OtherSyscall, ops)
            }
            SysReq::ShmAttach { seg, pages } => {
                let mut ops = self.syscall_prologue(slot);
                ops.push(self.win(Rid::ShmAttach));
                ops.push(KOp::Lock(shr_lock(slot)));
                ops.push(KOp::sweep(
                    self.pt_entry_addr(slot, shm_base_vpn(seg)),
                    (pages as u64 * 4).min(sizes::PAGE_TABLE),
                    16,
                    true,
                ));
                ops.push(KOp::Call(KCall::ShmMap { seg, pages }));
                ops.push(KOp::Unlock(shr_lock(slot)));
                ops.extend(self.syscall_epilogue(slot));
                KFrame::new(OpClass::OtherSyscall, ops)
            }
            SysReq::SemOp { sem, delta } => {
                let semlock = LockId::singleton(LockFamily::Semlock);
                let mut ops = self.syscall_prologue(slot);
                ops.push(self.win(Rid::SemOp));
                ops.push(KOp::Lock(semlock));
                ops.push(KOp::read(
                    self.layout.misc_data().add(1024 + (sem as u64 % 64) * 16),
                ));
                ops.push(KOp::write(
                    self.layout.misc_data().add(1024 + (sem as u64 % 64) * 16),
                ));
                ops.push(KOp::Unlock(semlock));
                ops.push(KOp::Call(KCall::SemOpApply { sem, delta }));
                ops.extend(self.syscall_epilogue(slot));
                KFrame::new(OpClass::OtherSyscall, ops)
            }
            SysReq::PipeRead { pipe, bytes } => {
                let p = pipe as usize % self.pipes.len();
                let mut ops = self.syscall_prologue(slot);
                ops.push(self.win(Rid::PipeRead));
                ops.push(KOp::Lock(LockId::new(LockFamily::Pipe, p as u32)));
                ops.push(KOp::read(self.layout.pipe_buf(p)));
                ops.push(KOp::Unlock(LockId::new(LockFamily::Pipe, p as u32)));
                ops.push(KOp::Call(KCall::PipeXfer {
                    pipe: p,
                    bytes,
                    write: false,
                }));
                ops.extend(self.syscall_epilogue(slot));
                KFrame::new(OpClass::IoSyscall, ops)
            }
            SysReq::PipeWrite { pipe, bytes } => {
                let p = pipe as usize % self.pipes.len();
                let mut ops = self.syscall_prologue(slot);
                ops.push(self.win(Rid::PipeWrite));
                ops.push(KOp::Lock(LockId::new(LockFamily::Pipe, p as u32)));
                ops.push(KOp::read(self.layout.pipe_buf(p)));
                ops.push(KOp::Unlock(LockId::new(LockFamily::Pipe, p as u32)));
                ops.push(KOp::Call(KCall::PipeXfer {
                    pipe: p,
                    bytes,
                    write: true,
                }));
                ops.extend(self.syscall_epilogue(slot));
                KFrame::new(OpClass::IoSyscall, ops)
            }
            SysReq::TtyWrite { stream, bytes } => {
                let s = stream % 8;
                let lk = LockId::new(LockFamily::Streams, s);
                let buf = self.layout.pipe_buf(24 + s as usize % 8);
                let mut ops = self.syscall_prologue(slot);
                let src = self.user_io_buffer(slot, 0);
                ops.extend(self.bcopy_ops(
                    src,
                    self.layout.kernel_stack(slot).add(1024),
                    bytes.max(8) as u64,
                ));
                ops.push(self.win(Rid::StrWrite));
                ops.push(self.cold_win(Rid::ColdDriver, 2048));
                ops.push(KOp::Lock(lk));
                ops.push(self.win(Rid::StrPutq));
                ops.push(KOp::sweep(buf, (bytes.max(16)) as u64, 16, true));
                ops.push(KOp::Unlock(lk));
                ops.push(self.win_part(Rid::TtyOut, 0, 2));
                ops.extend(self.syscall_epilogue(slot));
                KFrame::new(OpClass::IoSyscall, ops)
            }
            SysReq::Nap { ticks } => {
                let mut ops = self.syscall_prologue(slot);
                ops.push(self.win(Rid::ItimerCheck));
                ops.push(KOp::Call(KCall::NapArm { ticks }));
                ops.extend(self.syscall_epilogue(slot));
                KFrame::new(OpClass::OtherSyscall, ops)
            }
            SysReq::SockRecv { bytes } => {
                // The network stack: long code paths (ip_input,
                // soreceive) plus an mbuf copy out to the user.
                let mut ops = self.syscall_prologue(slot);
                ops.push(self.win_part(Rid::NetInput, 0, 2));
                ops.push(self.win(Rid::SockRecv));
                ops.push(self.cold_win(Rid::ColdNet, 4096));
                ops.push(KOp::read(self.layout.pipe_buf(30)));
                let dst = self.user_io_buffer(slot, 1);
                let cops = self.bcopy_ops(
                    self.layout.pipe_buf(30),
                    dst,
                    (bytes.clamp(64, 4096)) as u64,
                );
                ops.extend(cops);
                ops.push(self.win_part(Rid::NetOutput, 0, 4));
                ops.extend(self.syscall_epilogue(slot));
                KFrame::new(OpClass::IoSyscall, ops)
            }
        }
    }

    fn build_read(&mut self, slot: ProcSlot, inode: u32, bytes: u32, at: Option<u64>) -> KFrame {
        let mut pos = at.unwrap_or_else(|| {
            self.procs
                .get(slot)
                .and_then(|p| p.files.get(&inode).copied())
                .unwrap_or(0)
        });
        let mut ops = self.syscall_prologue(slot);
        ops.push(KOp::Escape(OsEvent::CtxEnter(AttrCtx::ReadWriteSetup)));
        ops.push(self.win(Rid::ReadSys));
        ops.push(self.win(Rid::RdwrSetup));
        ops.push(KOp::read(self.layout.u_rest(slot).add(40)));
        ops.push(KOp::write(self.layout.u_rest(slot).add(104)));
        ops.push(self.win(Rid::CopyIn));
        ops.push(KOp::Escape(OsEvent::CtxExit));
        ops.push(KOp::Lock(ino_lock(inode)));
        ops.push(KOp::read(
            self.layout.inode(inode as usize % sizes::NINODE as usize),
        ));
        ops.push(self.win(Rid::Bmap));
        ops.push(self.cold_win(Rid::ColdFs, 4096));
        let mut remaining = bytes as u64;
        while remaining > 0 {
            let in_page = PAGE_SIZE - pos % PAGE_SIZE;
            let chunk = remaining
                .min(self.tuning.io_chunk_bytes as u64)
                .min(in_page);
            let key = (inode, (pos / PAGE_SIZE) as u32);
            let (b, bops) = self.getblk_ops(key, true);
            ops.extend(bops);
            if let Some(p) = &mut self.probes {
                p.io_chunks += 1;
            }
            ops.push(self.cold_win(Rid::ColdFs, 1024));
            ops.push(self.win(Rid::Uiomove));
            let src = self.layout.buf_data(b).add(pos % PAGE_SIZE);
            let dst_page = (pos / PAGE_SIZE) % 2;
            let dst = self.user_io_buffer(slot, dst_page).add(pos % PAGE_SIZE);
            ops.extend(self.bcopy_ops(src, dst, chunk));
            ops.push(self.win(Rid::BRelse));
            pos += chunk;
            remaining -= chunk;
        }
        ops.push(KOp::write(self.layout.u_rest(slot).add(48)));
        ops.push(KOp::Unlock(ino_lock(inode)));
        ops.extend(self.syscall_epilogue(slot));
        if at.is_none() {
            if let Some(p) = self.procs.get_mut(slot) {
                p.files.insert(inode, pos);
            }
        }
        KFrame::new(OpClass::IoSyscall, ops)
    }

    fn build_write(
        &mut self,
        slot: ProcSlot,
        inode: u32,
        bytes: u32,
        at: Option<u64>,
        sync: bool,
    ) -> KFrame {
        let mut pos = at.unwrap_or_else(|| {
            self.procs
                .get(slot)
                .and_then(|p| p.files.get(&inode).copied())
                .unwrap_or(0)
        });
        let mut ops = self.syscall_prologue(slot);
        ops.push(KOp::Escape(OsEvent::CtxEnter(AttrCtx::ReadWriteSetup)));
        ops.push(self.win(Rid::WriteSys));
        ops.push(self.win(Rid::RdwrSetup));
        ops.push(KOp::read(self.layout.u_rest(slot).add(40)));
        ops.push(KOp::write(self.layout.u_rest(slot).add(104)));
        ops.push(self.win(Rid::CopyIn));
        ops.push(KOp::Escape(OsEvent::CtxExit));
        ops.push(KOp::Lock(ino_lock(inode)));
        ops.push(KOp::read(
            self.layout.inode(inode as usize % sizes::NINODE as usize),
        ));
        ops.push(self.win(Rid::Bmap));
        ops.push(self.cold_win(Rid::ColdFs, 4096));
        let mut remaining = bytes as u64;
        let mut chunk_index = 0u64;
        let mut last_buf: Option<usize> = None;
        while remaining > 0 {
            let in_page = PAGE_SIZE - pos % PAGE_SIZE;
            let chunk = remaining
                .min(self.tuning.io_chunk_bytes as u64)
                .min(in_page);
            let size = self.file_sizes.get(&inode).copied().unwrap_or(0);
            let appending = pos >= size;
            if appending && pos.is_multiple_of(PAGE_SIZE) {
                // Allocate a fresh disk block for the file.
                ops.push(KOp::Lock(DFBMAPLK));
                ops.push(self.win(Rid::DiskBlkAlloc));
                ops.push(KOp::write(self.layout.misc_data().add(2048)));
                ops.push(KOp::Unlock(DFBMAPLK));
            }
            let key = (inode, (pos / PAGE_SIZE) as u32);
            // Whole-block overwrites and appends need no read I/O.
            let needs_read = !appending && chunk < PAGE_SIZE;
            let (b, bops) = self.getblk_ops(key, needs_read);
            ops.extend(bops);
            if let Some(p) = &mut self.probes {
                p.io_chunks += 1;
            }
            ops.push(self.win(Rid::Uiomove));
            let src_page = (pos / PAGE_SIZE) % 2;
            let src = self.user_io_buffer(slot, src_page).add(pos % PAGE_SIZE);
            let dst = self.layout.buf_data(b).add(pos % PAGE_SIZE);
            ops.extend(self.bcopy_ops(src, dst, chunk));
            self.bufcache.mark_dirty(b);
            last_buf = Some(b);
            let _ = chunk_index;
            pos += chunk;
            remaining -= chunk;
            chunk_index += 1;
            // Write-behind: a completed block goes to disk
            // asynchronously (the classic bawrite).
            if pos.is_multiple_of(PAGE_SIZE) {
                ops.push(self.win(Rid::BWrite));
                ops.push(KOp::Call(KCall::DiskEnqueue {
                    buf: b,
                    write: true,
                    seq: true,
                }));
                self.bufcache.mark_clean(b);
            }
            if pos > size {
                self.file_sizes.insert(inode, pos);
            }
        }
        // Synchronous writes (redo logs) wait for the final block to
        // reach the platter.
        if sync {
            if let Some(b) = last_buf {
                ops.push(self.win(Rid::BWrite));
                ops.push(KOp::Call(KCall::SyncWriteStart { buf: b }));
                ops.push(self.win(Rid::BioWait));
                ops.push(KOp::Call(KCall::Sleep { chan: Chan::Buf(b) }));
            }
        }
        ops.push(KOp::write(self.layout.u_rest(slot).add(48)));
        ops.push(KOp::write(
            self.layout
                .inode(inode as usize % sizes::NINODE as usize)
                .add(32),
        ));
        ops.push(KOp::Unlock(ino_lock(inode)));
        ops.extend(self.syscall_epilogue(slot));
        if at.is_none() {
            if let Some(p) = self.procs.get_mut(slot) {
                p.files.insert(inode, pos);
            }
        }
        KFrame::new(OpClass::IoSyscall, ops)
    }

    fn build_open(&mut self, slot: ProcSlot, inode: u32, components: u32) -> KFrame {
        let mut ops = self.syscall_prologue(slot);
        // copyin of the path string: an irregular block copy.
        let src = self.user_io_buffer(slot, 0);
        ops.extend(self.bcopy_ops(src, self.layout.kernel_stack(slot).add(256), 24));
        ops.push(self.win(Rid::OpenSys));
        ops.push(self.win(Rid::Namei));
        ops.push(self.cold_win(Rid::ColdFs, 3072));
        for c in 0..components.max(1) {
            ops.push(self.win_part(Rid::DirLookup, c % 2, 2));
            // Directory block read through the buffer cache.
            let (_, bops) = self.getblk_ops((1, inode.wrapping_add(c) % 64), true);
            ops.extend(bops);
        }
        ops.extend(self.iget_ops(inode));
        ops.push(self.win(Rid::FileAlloc));
        ops.push(KOp::write(self.layout.u_rest(slot).add(128)));
        ops.extend(self.syscall_epilogue(slot));
        if let Some(p) = self.procs.get_mut(slot) {
            p.files.entry(inode).or_insert(0);
        }
        KFrame::new(OpClass::OtherSyscall, ops)
    }

    fn build_close(&mut self, slot: ProcSlot, inode: u32) -> KFrame {
        let addr = self.layout.inode(inode as usize % sizes::NINODE as usize);
        let mut ops = self.syscall_prologue(slot);
        ops.push(self.win(Rid::CloseSys));
        ops.push(self.win(Rid::IPut));
        ops.push(KOp::Lock(IFREE));
        ops.push(KOp::write(addr.add(8)));
        ops.push(KOp::Unlock(IFREE));
        ops.push(KOp::write(self.layout.u_rest(slot).add(128)));
        ops.extend(self.syscall_epilogue(slot));
        if let Some(p) = self.procs.get_mut(slot) {
            p.files.remove(&inode);
        }
        KFrame::new(OpClass::OtherSyscall, ops)
    }

    // ----- context switching ---------------------------------------

    /// Builds and installs the dispatch frame for a context switch.
    pub(crate) fn do_swtch(&mut self, _m: &mut Machine, cpu: CpuId, disp: Disposition) {
        let i = cpu.index();
        let old = self.cpus[i].running;
        let mut ops = vec![
            KOp::Escape(OsEvent::CtxEnter(AttrCtx::RunQueueMgmt)),
            self.win(Rid::Swtch),
        ];
        if let Some(oslot) = old {
            ops.push(self.win(Rid::SaveCtx));
            ops.push(KOp::sweep(self.layout.pcb(oslot), sizes::PCB, 16, true));
        }
        // State changes happen now; the memory traffic plays out in the
        // dispatch frame.
        let mut requeue_target = None;
        if let Some(oslot) = old {
            match disp {
                Disposition::Requeue => {
                    if let Some(p) = self.procs.get_mut(oslot) {
                        p.state = ProcState::Ready;
                    }
                    self.enqueue_proc(oslot);
                    requeue_target = Some(oslot);
                }
                Disposition::Sleep(chan) => {
                    if let Some(p) = self.procs.get_mut(oslot) {
                        p.state = ProcState::Sleeping(chan);
                    }
                }
                Disposition::Exit => {
                    let orphan = self
                        .procs
                        .get(oslot)
                        .is_some_and(|p| p.parent.and_then(|ps| self.procs.get(ps)).is_none());
                    if let Some(p) = self.procs.get_mut(oslot) {
                        p.state = ProcState::Zombie;
                        p.kstack.clear();
                        p.cur_uop = None;
                    }
                    if orphan {
                        self.procs.reap(oslot);
                    }
                }
                Disposition::FromIdle => unreachable!(),
            }
        }
        self.cpus[i].running = None;
        self.cpus[i].resched = false;
        let q = self.runq_index(cpu);
        ops.push(KOp::Lock(runqlk(q)));
        if let Some(t) = requeue_target {
            ops.extend(self.setrq_body_ops(t));
        }
        ops.push(self.win(Rid::PickProc));
        ops.push(KOp::read(self.layout.run_queue()));
        ops.push(KOp::Call(KCall::SwtchCommit));
        self.set_dispatch(cpu, KFrame::new(OpClass::OtherSyscall, ops));
    }

    /// Wakes all sleepers of `chan`, returning the `setrq` memory ops
    /// the waker executes.
    pub(crate) fn wakeup_ops(&mut self, chan: Chan) -> Vec<KOp> {
        let sleepers = self.procs.sleepers(chan);
        if sleepers.is_empty() {
            return Vec::new();
        }
        let mut ops = Vec::new();
        for s in sleepers {
            if let Some(p) = self.procs.get_mut(s) {
                p.state = ProcState::Ready;
            }
            let q = self.enqueue_proc(s);
            ops.push(KOp::Lock(runqlk(q)));
            ops.extend(self.setrq_body_ops(s));
            ops.push(KOp::Unlock(runqlk(q)));
        }
        ops
    }

    /// Whether a sleep on `chan` is still warranted (closes lost-wakeup
    /// races for plan-ahead frames).
    fn sleep_condition_holds(&self, chan: Chan) -> bool {
        match chan {
            // Wait only for I/O that is actually outstanding: a buffer
            // marked busy by a frame that has not yet issued its disk
            // request must not be waited on (the issuer could itself be
            // blocked behind a lock the would-be waiter holds).
            Chan::Buf(b) => self.bufcache.is_busy(b) && self.disk.has_request(b),
            Chan::PipeData(p) => self.pipes[p] == 0,
            Chan::PipeSpace(p) => self.pipes[p] as u64 >= PAGE_SIZE,
            Chan::Timer(_) => self.callouts.iter().any(|c| c.chan == chan),
            Chan::Child(_) => true, // WaitCheck re-verifies
            Chan::Sem(s) => self.sems.get(&s).copied().unwrap_or(0) <= 0,
            Chan::InoWait(i) => self
                .locks
                .is_held(crate::locks::LockId::new(crate::locks::LockFamily::Ino, i)),
        }
    }

    // ----- KCall handlers ------------------------------------------

    pub(crate) fn handle_call(&mut self, m: &mut Machine, cpu: CpuId, loc: FrameLoc, call: KCall) {
        match call {
            KCall::Swtch(disp) => self.do_swtch(m, cpu, disp),
            KCall::SwtchCommit => self.swtch_commit(m, cpu),
            KCall::TlbRefill { vpn, write } => self.tlb_refill(m, cpu, loc, vpn, write),
            KCall::TlbInsert { vpn, ppn } => {
                let slot = self.cpus[cpu.index()].running.expect("process running");
                let asid = self.procs.get(slot).unwrap().pid.0;
                let index = m.tlb_mut(cpu).insert(Vpn(vpn), Ppn(ppn), asid) as u32;
                self.emit(
                    m,
                    cpu,
                    OsEvent::TlbSet {
                        index,
                        vpn,
                        ppn,
                        pid: asid,
                    },
                );
            }
            KCall::AllocPage { vpn, init } => self.alloc_page(m, cpu, loc, Vpn(vpn), init),
            KCall::SyncWriteStart { buf } => {
                let now = m.now(cpu);
                self.bufcache.set_busy(buf);
                self.bufcache.mark_clean(buf);
                self.disk.submit(now, buf, true, true);
                self.stats.disk_writes += 1;
            }
            KCall::DiskEnqueue { buf, write, seq } => {
                let now = m.now(cpu);
                self.disk.submit(now, buf, write, seq);
                if write {
                    self.stats.disk_writes += 1;
                } else {
                    self.stats.disk_reads += 1;
                }
            }
            KCall::Sleep { chan } => {
                if self.sleep_condition_holds(chan) {
                    self.do_swtch(m, cpu, Disposition::Sleep(chan));
                }
            }
            KCall::ForkChild => self.fork_child(m, cpu, loc),
            KCall::ExecReplace { image } => self.exec_replace(m, cpu, loc, image),
            KCall::ExecLoad { image, page } => self.exec_load(m, cpu, loc, image, page),
            KCall::ExitFinish => self.exit_finish(m, cpu, loc),
            KCall::WaitCheck => self.wait_check(m, cpu, loc),
            KCall::SemOpApply { sem, delta } => {
                let v = self.sems.entry(sem).or_insert(0);
                if delta < 0 && *v <= 0 {
                    let ops = vec![
                        KOp::Call(KCall::Sleep {
                            chan: Chan::Sem(sem),
                        }),
                        KOp::Call(KCall::SemOpApply { sem, delta }),
                    ];
                    self.frame_mut(cpu, loc).push_front_ops(ops);
                } else {
                    *v += delta as i64;
                    if delta > 0 {
                        let ops = self.wakeup_ops(Chan::Sem(sem));
                        self.frame_mut(cpu, loc).push_front_ops(ops);
                    }
                }
            }
            KCall::PipeXfer { pipe, bytes, write } => self.pipe_xfer(cpu, loc, pipe, bytes, write),
            KCall::NapArm { ticks } => {
                let slot = self.cpus[cpu.index()].running.expect("process running");
                let pid = self.procs.get(slot).unwrap().pid;
                let due_tick = self.global_tick + ticks.max(1) as u64;
                self.callouts.push(crate::kernel::Callout {
                    due_tick,
                    chan: Chan::Timer(pid),
                });
                let n = self.callouts.len().min(255) as u64;
                let ops = vec![
                    KOp::Lock(CALOCK),
                    self.win(Rid::AddCallout),
                    KOp::write(self.layout.callout().add(n * 16)),
                    KOp::Unlock(CALOCK),
                    KOp::Call(KCall::Sleep {
                        chan: Chan::Timer(pid),
                    }),
                ];
                self.frame_mut(cpu, loc).push_front_ops(ops);
            }
            KCall::ClockTick => self.clock_tick(cpu, loc),
            KCall::SchedCpuScan => {
                let live = self.procs.live().max(1) as u64;
                let span = (live * sizes::PROC_ENTRY).min(sizes::NPROC * sizes::PROC_ENTRY);
                let base = self.layout.proc_entry(ProcSlot(0));
                let ops = vec![
                    self.win(Rid::SchedCpu),
                    KOp::sweep(base, span, 64, false),
                    KOp::sweep(base.add(24), span, sizes::PROC_ENTRY as u32, true),
                ];
                self.frame_mut(cpu, loc).push_front_ops(ops);
            }
            KCall::DiskIntrDone => self.disk_intr_done(m, cpu, loc),
            KCall::ShmMap { seg, pages } => {
                self.frames.segment_mut(seg, pages);
            }
        }
    }

    fn swtch_commit(&mut self, _m: &mut Machine, cpu: CpuId) {
        let i = cpu.index();
        let quantum = self.tuning.quantum_ticks;
        let own = self.runq_index(cpu);
        let next = {
            let procs = &self.procs;
            let pick_from = |q: &mut crate::sched::RunQueue| {
                q.pick(
                    cpu,
                    |s| {
                        procs
                            .get(s)
                            .is_some_and(|p| p.pinned_cpu.is_none_or(|pin| pin == cpu))
                    },
                    |s| procs.get(s).and_then(|p| p.last_cpu),
                )
            };
            match pick_from(&mut self.runqs[own]) {
                Some(n) => Some(n),
                None => {
                    // Idle stealing across clusters for load balance.
                    let len = self.runqs.len();
                    (1..len)
                        .map(|d| (own + d) % len)
                        .find_map(|q| pick_from(&mut self.runqs[q]))
                }
            }
        };
        self.stats.dispatches += 1;
        let mut tail: Vec<KOp> = vec![KOp::Unlock(runqlk(own))];
        match next {
            Some(n) => {
                let migrated;
                {
                    let p = self.procs.get_mut(n).expect("picked process exists");
                    migrated = p.last_cpu.is_some_and(|c| c != cpu);
                    p.state = ProcState::Running(cpu);
                    p.last_cpu = Some(cpu);
                    p.quantum = quantum;
                }
                if migrated {
                    self.stats.migrations += 1;
                }
                self.cpus[i].running = Some(n);
                let pid = self.procs.get(n).unwrap().pid.0;
                tail.push(self.win(Rid::RestoreCtx));
                tail.push(KOp::sweep(self.layout.pcb(n), sizes::PCB, 16, false));
                tail.push(KOp::Escape(OsEvent::PidChange { pid }));
            }
            None => {
                tail.push(KOp::Escape(OsEvent::PidChange { pid: u32::MAX }));
            }
        }
        tail.push(KOp::Escape(OsEvent::CtxExit));
        self.frame_mut(cpu, FrameLoc::Dispatch).push_back_ops(tail);
    }

    fn tlb_refill(&mut self, m: &mut Machine, cpu: CpuId, loc: FrameLoc, vpn: u32, write: bool) {
        let slot = self.cpus[cpu.index()].running.expect("process running");
        let vpnn = Vpn(vpn);
        let pte = self.procs.get(slot).unwrap().page_table.get(&vpnn).copied();
        match pte {
            Some(p) if !(write && p.cow) => {
                let slow = {
                    let divisor = self.tuning.cheap_fault_divisor.max(1);
                    self.procs.get_mut(slot).unwrap().rng.gen_ratio(1, divisor)
                };
                if slow {
                    // Software reference-bit emulation: a full trap.
                    self.emit(m, cpu, OsEvent::OpReclass(OpClass::CheapTlbFault));
                    self.stats
                        .reclass(OpClass::UtlbFault, OpClass::CheapTlbFault);
                    let mut ops = self.eframe_save_ops(self.layout.eframe(slot));
                    ops.push(self.win(Rid::TlbMissSlow));
                    ops.push(KOp::read(self.pt_entry_addr(slot, vpnn)));
                    ops.push(KOp::write(self.pt_entry_addr(slot, vpnn)));
                    ops.push(self.win(Rid::TlbDropin));
                    ops.push(KOp::Call(KCall::TlbInsert { vpn, ppn: p.ppn.0 }));
                    ops.extend(self.eframe_restore_ops(self.layout.eframe(slot)));
                    self.frame_mut(cpu, loc).push_front_ops(ops);
                } else {
                    let ops = vec![
                        self.win(Rid::TlbDropin),
                        KOp::Call(KCall::TlbInsert { vpn, ppn: p.ppn.0 }),
                    ];
                    self.frame_mut(cpu, loc).push_front_ops(ops);
                }
            }
            other => {
                // Expensive fault: allocation or COW resolution.
                self.emit(m, cpu, OsEvent::OpReclass(OpClass::ExpensiveTlbFault));
                self.stats
                    .reclass(OpClass::UtlbFault, OpClass::ExpensiveTlbFault);
                let init = match other {
                    Some(p) if write && p.cow => PageInit::CopyFrom(p.ppn.0),
                    _ => PageInit::Zero,
                };
                let mut ops = self.eframe_save_ops(self.layout.eframe(slot));
                ops.push(self.win_part(Rid::TrapDispatch, 1, 2));
                ops.push(self.win(Rid::VFault));
                ops.push(self.cold_win(Rid::ColdVm, 3072));
                ops.push(KOp::Lock(shr_lock(slot)));
                ops.push(KOp::read(self.pt_entry_addr(slot, vpnn)));
                ops.push(KOp::Call(KCall::AllocPage { vpn, init }));
                ops.push(KOp::Unlock(shr_lock(slot)));
                ops.extend(self.eframe_restore_ops(self.layout.eframe(slot)));
                self.frame_mut(cpu, loc).push_front_ops(ops);
            }
        }
    }

    fn note_alloc_flush(&mut self, m: &mut Machine, cpu: CpuId, fa: &FrameAlloc) {
        // In cluster mode the frame's home is the faulting CPU's
        // cluster (first-touch placement).
        if self.tuning.clusters > 1 {
            m.set_page_home(fa.ppn, self.cluster_of(cpu));
        }
        if fa.needs_icache_flush {
            m.flush_icache_page(fa.ppn);
            self.frames.note_icache_flushed(fa.ppn);
            self.stats.icache_flushes += 1;
            self.emit(m, cpu, OsEvent::IcacheFlush { ppn: fa.ppn.0 });
        }
    }

    /// Inserts a page-table entry, keeping the process's `cow_pages`
    /// counter in sync with both the old and new entry's COW bit.
    fn pt_insert(&mut self, slot: ProcSlot, vpn: Vpn, pte: Pte) {
        let p = self.procs.get_mut(slot).unwrap();
        if p.page_table.insert(vpn, pte).is_some_and(|old| old.cow) {
            p.cow_pages -= 1;
        }
        if pte.cow {
            p.cow_pages += 1;
        }
    }

    fn alloc_page(&mut self, m: &mut Machine, cpu: CpuId, loc: FrameLoc, vpn: Vpn, init: PageInit) {
        let slot = self.cpus[cpu.index()].running.expect("process running");
        // Re-check after retries (another fault may have mapped it).
        if let Some(pte) = self.procs.get(slot).unwrap().page_table.get(&vpn).copied() {
            match init {
                PageInit::CopyFrom(src) if pte.cow => {
                    // COW resolution.
                    if self.frames.refs(Ppn(src)) == 1 {
                        // Sole owner: just take the page.
                        self.pt_insert(
                            slot,
                            vpn,
                            Pte {
                                ppn: Ppn(src),
                                cow: false,
                            },
                        );
                        let ops = vec![
                            KOp::write(self.pt_entry_addr(slot, vpn)),
                            KOp::Call(KCall::TlbInsert {
                                vpn: vpn.0,
                                ppn: src,
                            }),
                        ];
                        self.frame_mut(cpu, loc).push_front_ops(ops);
                        return;
                    }
                }
                _ => {
                    // Already mapped and not COW work: just refill.
                    self.frame_mut(cpu, loc)
                        .push_front_ops(vec![KOp::Call(KCall::TlbInsert {
                            vpn: vpn.0,
                            ppn: pte.ppn.0,
                        })]);
                    return;
                }
            }
        }

        // Memory pressure: run the page-out scan, then retry.
        if self.frames.free_count() < self.tuning.low_free_frames {
            let mut ops = self.build_pageout_ops(m);
            ops.push(KOp::Call(KCall::AllocPage { vpn: vpn.0, init }));
            self.frame_mut(cpu, loc).push_front_ops(ops);
            return;
        }

        let pid = self.procs.get(slot).unwrap().pid;
        // Shared-memory pages map an existing segment frame if present.
        if segs::is_shm(vpn) {
            let (seg, index) = shm_seg_of(vpn);
            if let Some(ppn) = self.frames.segment_frame(seg, index) {
                self.frames.add_ref(ppn);
                self.pt_insert(slot, vpn, Pte { ppn, cow: false });
                let ops = vec![
                    KOp::write(self.pt_entry_addr(slot, vpn)),
                    KOp::Call(KCall::TlbInsert {
                        vpn: vpn.0,
                        ppn: ppn.0,
                    }),
                ];
                self.frame_mut(cpu, loc).push_front_ops(ops);
                return;
            }
            let fa = self
                .frames
                .alloc_colored(FrameUse::Shm { seg, index }, false, (vpn.0 % 16) as u8)
                .expect("frame pool exhausted");
            self.note_alloc_flush(m, cpu, &fa);
            self.frames.set_segment_frame(seg, index, fa.ppn);
            self.pt_insert(
                slot,
                vpn,
                Pte {
                    ppn: fa.ppn,
                    cow: false,
                },
            );
            self.stats.demand_zero += 1;
            let mut ops = self.page_alloc_ops(fa.ppn);
            ops.extend(self.bclear_ops(fa.ppn.base(), PAGE_SIZE));
            ops.push(KOp::write(self.pt_entry_addr(slot, vpn)));
            ops.push(KOp::Call(KCall::TlbInsert {
                vpn: vpn.0,
                ppn: fa.ppn.0,
            }));
            self.frame_mut(cpu, loc).push_front_ops(ops);
            return;
        }

        let is_code = segs::is_text(vpn);
        let fa = self
            .frames
            .alloc_colored(
                FrameUse::User {
                    pid,
                    vpn,
                    text: is_code,
                },
                is_code,
                (vpn.0 % 16) as u8,
            )
            .expect("frame pool exhausted");
        self.note_alloc_flush(m, cpu, &fa);
        let mut ops = self.page_alloc_ops(fa.ppn);
        match init {
            PageInit::Zero | PageInit::None => {
                self.stats.demand_zero += 1;
                ops.extend(self.bclear_ops(fa.ppn.base(), PAGE_SIZE));
            }
            PageInit::CopyFrom(src) => {
                self.stats.cow_copies += 1;
                ops.extend(self.bcopy_ops(Ppn(src).base(), fa.ppn.base(), PAGE_SIZE));
                self.frames.release(Ppn(src));
            }
        }
        self.pt_insert(
            slot,
            vpn,
            Pte {
                ppn: fa.ppn,
                cow: false,
            },
        );
        ops.push(KOp::write(self.pt_entry_addr(slot, vpn)));
        ops.push(KOp::Call(KCall::TlbInsert {
            vpn: vpn.0,
            ppn: fa.ppn.0,
        }));
        self.frame_mut(cpu, loc).push_front_ops(ops);
    }

    /// `pagealloc` memory traffic: free-page bucket and pfdat updates
    /// under `Memlock`.
    fn page_alloc_ops(&mut self, ppn: Ppn) -> Vec<KOp> {
        let bucket = self
            .layout
            .free_pg_buck()
            .add((ppn.0 as u64 % 64) * (sizes::FREE_PG_BUCK / 64));
        vec![
            KOp::Lock(MEMLOCK),
            self.win(Rid::PageAlloc),
            KOp::read(bucket),
            KOp::write(bucket),
            KOp::sweep(self.layout.pfdat_entry(ppn), sizes::PFDAT_ENTRY, 16, true),
            KOp::Unlock(MEMLOCK),
        ]
    }

    /// Page-out scan: sweep the pfdat, steal victims, write dirty pages
    /// out.
    fn build_pageout_ops(&mut self, m: &mut Machine) -> Vec<KOp> {
        let victims = self.frames.pageout_victims(self.tuning.pageout_batch);
        let mut shootdown_needed = false;
        let mut ops = vec![
            KOp::Escape(OsEvent::CtxEnter(AttrCtx::PfdatScan)),
            self.win(Rid::PageoutScan),
        ];
        // The scan reads descriptors from the region it walked.
        let (pf_base, pf_len) = self.layout.pfdat_region();
        let scan_span = ((victims.len().max(8) as u64) * 8 * sizes::PFDAT_ENTRY).min(pf_len);
        let offset = (self.stats.pageouts * 4096) % pf_len.saturating_sub(scan_span).max(1);
        ops.push(KOp::sweep(pf_base.add(offset), scan_span, 32, false));
        let mut writes = 0;
        for (ppn, use_) in victims {
            if let FrameUse::User { pid, vpn, .. } = use_ {
                // Invalidate the owner's mapping and TLB entries.
                let owner = self.procs.iter().find(|p| p.pid == pid).map(|p| p.slot);
                if let Some(oslot) = owner {
                    if let Some(p) = self.procs.get_mut(oslot) {
                        if p.page_table.remove(&vpn).is_some_and(|old| old.cow) {
                            p.cow_pages -= 1;
                        }
                    }
                }
                for c in 0..self.num_cpus {
                    m.tlb_mut(CpuId(c)).flush_ppn(ppn);
                }
            }
            ops.push(KOp::sweep(
                self.layout.pfdat_entry(ppn),
                sizes::PFDAT_ENTRY,
                16,
                true,
            ));
            shootdown_needed = true;
            self.frames.release(ppn);
            self.stats.pageouts += 1;
            // Every few victims go to disk (dirty pages).
            writes += 1;
            if writes % 4 == 0 {
                ops.push(KOp::Call(KCall::DiskEnqueue {
                    buf: DISK_NO_BUF,
                    write: true,
                    seq: true,
                }));
            }
        }
        ops.push(self.win(Rid::SwapOut));
        ops.push(KOp::Escape(OsEvent::CtxExit));
        if shootdown_needed {
            self.post_tlb_shootdown(m.earliest_cpu());
        }
        ops
    }

    fn fork_child(&mut self, _m: &mut Machine, cpu: CpuId, loc: FrameLoc) {
        let parent = self.cpus[cpu.index()].running.expect("process running");
        let Some(child_task) = self
            .procs
            .get_mut(parent)
            .and_then(|p| p.pending_child.take())
        else {
            return;
        };
        let quantum = self.tuning.quantum_ticks;
        let seed = self.tuning.seed;
        let Some(child) = self.procs.spawn(child_task, Some(parent), quantum, seed) else {
            return; // table full: fork fails silently
        };
        // Share the address space copy-on-write.
        let parent_pt: Vec<(Vpn, Pte)> = self
            .procs
            .get(parent)
            .unwrap()
            .page_table
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        let mut child_pt = oscar_machine::fasthash::FastMap::default();
        let mut child_cows = 0u32;
        for (vpn, mut pte) in parent_pt {
            self.frames.add_ref(pte.ppn);
            let shared_ro = segs::is_text(vpn) || segs::is_shm(vpn);
            if !shared_ro {
                pte.cow = true;
                child_cows += 1;
                // Parent side becomes COW too.
                if let Some(p) = self.procs.get_mut(parent) {
                    if let Some(ppte) = p.page_table.get_mut(&vpn) {
                        if !ppte.cow {
                            ppte.cow = true;
                            p.cow_pages += 1;
                        }
                    }
                }
            }
            child_pt.insert(vpn, pte);
        }
        let image = self.procs.get(parent).unwrap().image;
        let n_pte = child_pt.len() as u64;
        {
            let c = self.procs.get_mut(child).unwrap();
            c.page_table = child_pt;
            c.cow_pages = child_cows;
            c.image = image;
            c.state = ProcState::Ready;
        }
        self.procs.get(parent).unwrap().debug_assert_cow_count();
        self.procs.get(child).unwrap().debug_assert_cow_count();
        let child_q = self.enqueue_proc(child);
        self.stats.forks += 1;

        let mut ops = vec![KOp::sweep(
            self.layout.proc_entry(child),
            sizes::PROC_ENTRY,
            16,
            true,
        )];
        // Copy the live page-table span.
        let span = (n_pte * 4).clamp(64, sizes::PAGE_TABLE);
        ops.push(KOp::Lock(shr_lock(parent)));
        ops.push(KOp::sweep(self.layout.page_table(parent), span, 16, false));
        ops.push(KOp::sweep(self.layout.page_table(child), span, 16, true));
        ops.push(KOp::Unlock(shr_lock(parent)));
        // Duplicate the user structure (a block copy).
        let uops = self.bcopy_ops(
            self.layout.ustruct(parent),
            self.layout.ustruct(child),
            sizes::USTRUCT,
        );
        ops.extend(uops);
        ops.push(KOp::Lock(runqlk(child_q)));
        ops.extend(self.setrq_body_ops(child));
        ops.push(KOp::Unlock(runqlk(child_q)));
        self.frame_mut(cpu, loc).push_front_ops(ops);
    }

    fn exec_replace(&mut self, m: &mut Machine, cpu: CpuId, loc: FrameLoc, image: ExecImage) {
        let slot = self.cpus[cpu.index()].running.expect("process running");
        self.stats.execs += 1;
        // Tear down the old address space.
        let old_pt: Vec<(Vpn, Pte)> = self
            .procs
            .get_mut(slot)
            .unwrap()
            .page_table
            .drain()
            .collect();
        self.procs.get_mut(slot).unwrap().cow_pages = 0;
        let n_old = old_pt.len() as u64;
        for (_, pte) in old_pt {
            self.frames.release(pte.ppn);
        }
        let asid = self.procs.get(slot).unwrap().pid.0;
        for c in 0..self.num_cpus {
            m.tlb_mut(CpuId(c)).flush_asid(asid);
        }
        {
            let p = self.procs.get_mut(slot).unwrap();
            p.image = Some(image);
            p.files.clear();
        }

        let ops = vec![
            self.win(Rid::TlbFlush),
            self.win(Rid::PageFree),
            KOp::Lock(MEMLOCK),
            KOp::sweep(
                self.layout.pfdat_entry(self.layout.frame_pool_first()),
                (n_old.max(4)) * sizes::PFDAT_ENTRY,
                16,
                true,
            ),
            KOp::Unlock(MEMLOCK),
            KOp::Call(KCall::ExecLoad { image, page: 0 }),
        ];
        self.frame_mut(cpu, loc).push_front_ops(ops);
    }

    /// Loads page `page` of `image` (text first, then initialized data)
    /// through the buffer cache, in 1 KB chunks — the paper's "regular
    /// page fragment" copies — then chains to the next page.
    fn exec_load(
        &mut self,
        m: &mut Machine,
        cpu: CpuId,
        loc: FrameLoc,
        image: ExecImage,
        page: u32,
    ) {
        let slot = self.cpus[cpu.index()].running.expect("process running");
        let text_pages = image.text_pages();
        let data_pages = image.data_bytes.div_ceil(PAGE_SIZE as u32);
        if page >= text_pages + data_pages {
            return;
        }
        let is_code = page < text_pages;
        let vpn = if is_code {
            Vpn(segs::TEXT_BASE.page().0 + page)
        } else {
            // Initialized data lands after the I/O buffer pages.
            Vpn(segs::DATA_BASE.page().0 + 8 + (page - text_pages))
        };
        let pid = self.procs.get(slot).unwrap().pid;
        let Some(fa) = self.frames.alloc_colored(
            FrameUse::User {
                pid,
                vpn,
                text: is_code,
            },
            is_code,
            (vpn.0 % 16) as u8,
        ) else {
            return; // out of memory: partial image (rare; tolerated)
        };
        self.note_alloc_flush(m, cpu, &fa);
        self.pt_insert(
            slot,
            vpn,
            Pte {
                ppn: fa.ppn,
                cow: false,
            },
        );
        let (b, mut ops) = self.getblk_ops((image.inode, page), true);
        for k in 0..4u64 {
            let cops = self.bcopy_ops(
                self.layout.buf_data(b).add(k * 1024),
                fa.ppn.base().add(k * 1024),
                1024,
            );
            ops.extend(cops);
        }
        ops.push(KOp::Call(KCall::ExecLoad {
            image,
            page: page + 1,
        }));
        self.frame_mut(cpu, loc).push_front_ops(ops);
    }

    fn exit_finish(&mut self, m: &mut Machine, cpu: CpuId, loc: FrameLoc) {
        let slot = self.cpus[cpu.index()].running.expect("process running");
        self.stats.exits += 1;
        let old_pt: Vec<(Vpn, Pte)> = self
            .procs
            .get_mut(slot)
            .unwrap()
            .page_table
            .drain()
            .collect();
        self.procs.get_mut(slot).unwrap().cow_pages = 0;
        let n_old = old_pt.len() as u64;
        for (_, pte) in old_pt {
            self.frames.release(pte.ppn);
        }
        let asid = self.procs.get(slot).unwrap().pid.0;
        for c in 0..self.num_cpus {
            m.tlb_mut(CpuId(c)).flush_asid(asid);
        }
        let parent = self.procs.get(slot).unwrap().parent;
        let mut ops = vec![
            self.win(Rid::PageFree),
            KOp::Lock(MEMLOCK),
            KOp::sweep(
                self.layout.pfdat_entry(self.layout.frame_pool_first()),
                (n_old.max(4)) * sizes::PFDAT_ENTRY,
                32,
                true,
            ),
            KOp::Unlock(MEMLOCK),
            KOp::write(self.layout.proc_entry(slot).add(48)),
        ];
        if let Some(ps) = parent {
            if let Some(p) = self.procs.get_mut(ps) {
                p.zombie_children += 1;
                ops.extend(self.wakeup_ops(Chan::Child(ps)));
            }
        }
        self.frame_mut(cpu, loc).push_front_ops(ops);
    }

    fn wait_check(&mut self, _m: &mut Machine, cpu: CpuId, loc: FrameLoc) {
        let slot = self.cpus[cpu.index()].running.expect("process running");
        let has_zombie = self.procs.get(slot).unwrap().zombie_children > 0;
        if has_zombie {
            self.procs.get_mut(slot).unwrap().zombie_children -= 1;
            let child = self
                .procs
                .iter()
                .find(|p| p.parent == Some(slot) && p.state == ProcState::Zombie)
                .map(|p| p.slot);
            if let Some(c) = child {
                let ops = vec![
                    KOp::read(self.layout.proc_entry(c)),
                    KOp::read(self.layout.proc_entry(c).add(64)),
                    KOp::write(self.layout.proc_entry(c).add(48)),
                ];
                self.procs.reap(c);
                self.frame_mut(cpu, loc).push_front_ops(ops);
            }
        } else {
            self.frame_mut(cpu, loc).push_front_ops(vec![
                KOp::Call(KCall::Sleep {
                    chan: Chan::Child(slot),
                }),
                KOp::Call(KCall::WaitCheck),
            ]);
        }
    }

    fn pipe_xfer(&mut self, cpu: CpuId, loc: FrameLoc, pipe: usize, bytes: u32, write: bool) {
        let slot = self.cpus[cpu.index()].running.expect("process running");
        let cap = PAGE_SIZE as u32;
        let level = self.pipes[pipe];
        if write {
            if level + bytes > cap {
                self.frame_mut(cpu, loc).push_front_ops(vec![
                    KOp::Call(KCall::Sleep {
                        chan: Chan::PipeSpace(pipe),
                    }),
                    KOp::Call(KCall::PipeXfer { pipe, bytes, write }),
                ]);
                return;
            }
            self.pipes[pipe] = level + bytes;
            let src = self.user_io_buffer(slot, 0);
            let mut ops = self.bcopy_ops(
                src,
                self.layout.pipe_buf(pipe).add(level as u64),
                bytes as u64,
            );
            ops.extend(self.wakeup_ops(Chan::PipeData(pipe)));
            self.frame_mut(cpu, loc).push_front_ops(ops);
        } else {
            if level == 0 {
                self.frame_mut(cpu, loc).push_front_ops(vec![
                    KOp::Call(KCall::Sleep {
                        chan: Chan::PipeData(pipe),
                    }),
                    KOp::Call(KCall::PipeXfer { pipe, bytes, write }),
                ]);
                return;
            }
            let take = level.min(bytes);
            self.pipes[pipe] = level - take;
            let dst = self.user_io_buffer(slot, 0);
            let mut ops = self.bcopy_ops(self.layout.pipe_buf(pipe), dst, take as u64);
            ops.extend(self.wakeup_ops(Chan::PipeSpace(pipe)));
            self.frame_mut(cpu, loc).push_front_ops(ops);
        }
    }

    fn clock_tick(&mut self, cpu: CpuId, loc: FrameLoc) {
        // Quantum accounting for the interrupted process.
        if let Some(slot) = self.cpus[cpu.index()].running {
            if let Some(p) = self.procs.get_mut(slot) {
                if p.quantum > 0 {
                    p.quantum -= 1;
                }
                if p.quantum == 0 {
                    self.cpus[cpu.index()].resched = true;
                }
            }
        }
        // CPU 0 owns the callout table and schedcpu.
        if cpu.index() != 0 {
            return;
        }
        let tick = self.global_tick;
        let due: Vec<Chan> = {
            let mut due = Vec::new();
            self.callouts.retain(|c| {
                if c.due_tick <= tick {
                    due.push(c.chan);
                    false
                } else {
                    true
                }
            });
            due
        };
        let n = self.callouts.len().clamp(4, 64) as u64;
        let mut ops = vec![
            KOp::Lock(CALOCK),
            self.win(Rid::CalloutScan),
            KOp::sweep(self.layout.callout(), n * 16, 16, false),
        ];
        for chan in due {
            ops.push(KOp::write(self.layout.callout().add(8)));
            ops.extend(self.wakeup_ops(chan));
        }
        ops.push(KOp::Unlock(CALOCK));
        if tick.is_multiple_of(self.tuning.schedcpu_ticks) && tick > 0 {
            ops.push(KOp::Call(KCall::SchedCpuScan));
        }
        self.frame_mut(cpu, loc).push_front_ops(ops);
    }

    fn disk_intr_done(&mut self, m: &mut Machine, cpu: CpuId, loc: FrameLoc) {
        let now = m.now(cpu);
        let Some(req) = self.disk.pop_completed(now) else {
            return;
        };
        if req.buf == DISK_NO_BUF {
            return;
        }
        let mut ops = vec![
            self.win(Rid::BioDone),
            KOp::write(self.layout.buf_hdr(req.buf)),
        ];
        self.bufcache.io_done(req.buf);
        if req.write {
            self.bufcache.mark_clean(req.buf);
        }
        // Readers of the block and synchronous writers both sleep on
        // the buffer channel.
        ops.extend(self.wakeup_ops(Chan::Buf(req.buf)));
        self.frame_mut(cpu, loc).push_front_ops(ops);
    }
}
