//! The kernel world: per-CPU execution contexts, the step engine, and
//! interrupt delivery.
//!
//! `OsWorld::step` advances one CPU by one micro-operation: a kernel
//! frame op, a user-program op (with TLB translation), or one idle-loop
//! iteration. The companion module `paths` builds the kernel
//! code paths (system calls, faults, interrupts) and executes the
//! deferred [`KCall`](crate::exec::KCall) decision points.

use std::collections::HashMap;

use oscar_machine::addr::{CpuId, PAddr, Ppn, VAddr, Vpn, BLOCK_SIZE, PAGE_SIZE};
use oscar_machine::machine::Machine;

use crate::exec::{sweep_step, Chan, Disposition, KFrame, KOp, NUM_KOP_KINDS};
use crate::fs::{BufferCache, Disk};
use crate::instrument::{OsEvent, NUM_OPCODES};
use crate::layout::{sizes, Layout, Rid};
use crate::locks::{LockFamily, LockId, LockObsStats, LockSpan, LockTable, TryAcquire};
use crate::proc::{ProcTable, Process, Pte};
use crate::sched::{RunQueue, SchedObs, SchedPolicy};
use crate::stats::OsStats;
use crate::types::{Mode, Pid, ProcSlot};
use crate::user::{segs, SysReq, TaskEnv, UOp, UserTask};
use crate::vm::FrameDb;

/// Tunable kernel parameters. Defaults approximate IRIX 3.2 on the
/// 33 MHz 4D/340 (one cycle = 30 ns).
#[derive(Debug, Clone)]
pub struct OsTuning {
    /// Cycles between clock interrupts (10 ms at 33 MHz).
    pub clock_tick_cycles: u64,
    /// Scheduling quantum in clock ticks.
    pub quantum_ticks: u32,
    /// `schedcpu` priority recomputation period, in ticks.
    pub schedcpu_ticks: u64,
    /// Nominal disk service latency in cycles.
    pub disk_latency_cycles: u64,
    /// Additional deterministic disk jitter span.
    pub disk_jitter_cycles: u64,
    /// Cycles burned per idle-loop iteration.
    pub idle_iter_cycles: u64,
    /// Extra backoff cycles per failed kernel lock spin.
    pub spin_retry_cycles: u64,
    /// Failed user-lock spins before the library calls `sginap`.
    pub user_spin_limit: u32,
    /// Bytes per buffer-cache transfer chunk in `read`/`write`.
    pub io_chunk_bytes: u32,
    /// Scheduling policy (free migration vs cache affinity).
    pub policy: SchedPolicy,
    /// Block operations bypass the caches (the paper's proposed
    /// optimization; an ablation knob).
    pub block_op_bypass: bool,
    /// Free-frame low watermark that triggers the page-out scan.
    pub low_free_frames: usize,
    /// Frames reclaimed per page-out scan.
    pub pageout_batch: usize,
    /// Master seed for per-process randomness.
    pub seed: u64,
    /// Fraction (1/n) of TLB refills that take the slow "cheap fault"
    /// path (software reference-bit emulation).
    pub cheap_fault_divisor: u32,
    /// Optional kernel text link order (the code-layout optimization
    /// ablation permutes hot routines to reduce I-cache conflicts).
    pub layout_order: Option<Vec<Rid>>,
    /// Number of clusters (Section 6 mode; 1 = the paper's flat
    /// machine). Must match the machine configuration.
    pub clusters: u8,
    /// Replicate the kernel text once per cluster, so instruction
    /// misses are serviced from cluster-local memory (Section 6's first
    /// proposal).
    pub replicate_os_text: bool,
    /// One run queue (and `Runqlk`) per cluster, with idle stealing for
    /// load balance (Section 6's second proposal).
    pub distributed_runq: bool,
    /// Sequential read-ahead in the buffer cache (`breada`): a
    /// sequential read miss also schedules the next block
    /// asynchronously. Off by default to match the calibrated baseline;
    /// an ablation knob.
    pub read_ahead: bool,
}

impl Default for OsTuning {
    fn default() -> Self {
        OsTuning {
            clock_tick_cycles: 330_000,
            quantum_ticks: 2,
            schedcpu_ticks: 16,
            disk_latency_cycles: 250_000,
            disk_jitter_cycles: 130_000,
            idle_iter_cycles: 40,
            spin_retry_cycles: 14,
            user_spin_limit: 20,
            io_chunk_bytes: 1024,
            policy: SchedPolicy::FreeMigration,
            block_op_bypass: false,
            low_free_frames: 96,
            pageout_batch: 48,
            seed: 0x05ca_4d34,
            cheap_fault_divisor: 20,
            layout_order: None,
            clusters: 1,
            replicate_os_text: false,
            distributed_runq: false,
            read_ahead: false,
        }
    }
}

impl OsTuning {
    /// A Section 6 cluster configuration: replicated OS text and
    /// distributed run queues over `clusters` clusters.
    pub fn clustered(clusters: u8) -> Self {
        OsTuning {
            clusters: clusters.max(1),
            replicate_os_text: true,
            distributed_runq: true,
            ..OsTuning::default()
        }
    }
}

/// Where a kernel frame lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameLoc {
    /// The CPU's dispatch (context-switch) frame.
    Dispatch,
    /// Top of the CPU's interrupt stack.
    Intr,
    /// Top of the running process's kernel stack.
    Proc(ProcSlot),
}

/// Per-CPU execution context.
#[derive(Debug)]
pub(crate) struct CpuCtx {
    pub running: Option<ProcSlot>,
    pub intr_stack: Vec<KFrame>,
    pub dispatch: Option<KFrame>,
    pub idle: bool,
    pub in_os: bool,
    pub resched: bool,
    pub next_tick_at: u64,
    /// Pending inter-CPU interrupts (TLB shootdowns).
    pub pending_ipi: u32,
    /// Spin locks currently held by code on this CPU. While non-zero,
    /// interrupt delivery is deferred (the spl mechanism of real
    /// kernels) — otherwise a nested handler could self-deadlock trying
    /// to take a lock its own CPU already holds.
    pub spl: u32,
}

impl CpuCtx {
    fn save(&self, w: &mut crate::snap::SnapWriter) {
        match self.running {
            None => w.bool(false),
            Some(s) => {
                w.bool(true);
                w.u16(s.0);
            }
        }
        w.usize(self.intr_stack.len());
        for f in &self.intr_stack {
            crate::snap::save_kframe(w, f);
        }
        match &self.dispatch {
            None => w.bool(false),
            Some(f) => {
                w.bool(true);
                crate::snap::save_kframe(w, f);
            }
        }
        w.bool(self.idle);
        w.bool(self.in_os);
        w.bool(self.resched);
        w.u64(self.next_tick_at);
        w.u32(self.pending_ipi);
        w.u32(self.spl);
    }

    fn load(&mut self, r: &mut crate::snap::SnapReader<'_>) -> Result<(), crate::snap::SnapError> {
        self.running = if r.bool()? {
            Some(ProcSlot(r.u16()?))
        } else {
            None
        };
        let n = r.usize()?;
        self.intr_stack.clear();
        for _ in 0..n {
            self.intr_stack.push(crate::snap::load_kframe(r)?);
        }
        self.dispatch = if r.bool()? {
            Some(crate::snap::load_kframe(r)?)
        } else {
            None
        };
        self.idle = r.bool()?;
        self.in_os = r.bool()?;
        self.resched = r.bool()?;
        self.next_tick_at = r.u64()?;
        self.pending_ipi = r.u32()?;
        self.spl = r.u32()?;
        Ok(())
    }

    fn new(first_tick: u64) -> Self {
        CpuCtx {
            running: None,
            intr_stack: Vec::new(),
            dispatch: None,
            idle: false,
            in_os: false,
            resched: false,
            next_tick_at: first_tick,
            pending_ipi: 0,
            spl: 0,
        }
    }
}

/// A pending callout (timeout table entry).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Callout {
    pub due_tick: u64,
    pub chan: Chan,
}

/// Kernel execution probes, kept only while observability is enabled
/// (a single `Option` check on the hot paths when it is not).
#[derive(Debug, Default)]
pub struct KernelProbes {
    /// Micro-ops executed, by [`KOp`] kind ([`KOp::KIND_LABELS`] order).
    pub kop: [u64; NUM_KOP_KINDS],
    /// Escape events emitted, by opcode
    /// ([`opcode_label`](crate::instrument::opcode_label) names them).
    pub escapes: [u64; NUM_OPCODES as usize],
    /// Buffer-cache transfer chunks moved by the `read`/`write` paths.
    pub io_chunks: u64,
    /// uTLB refill frames built.
    pub utlb_refills: u64,
    /// Copy-on-write fault frames built.
    pub cow_faults: u64,
}

/// Everything the kernel-side probes collected over a window, detached
/// by [`OsWorld::take_obs`].
#[derive(Debug, Default)]
pub struct KernelObsReport {
    /// Execution counters.
    pub probes: KernelProbes,
    /// Run-queue probes, merged across all queues.
    pub sched: SchedObs,
    /// Per-lock spin/hold profiles, most contended first.
    pub lock_profiles: Vec<(LockId, LockObsStats)>,
    /// Raw lock intervals in completion order, for timeline export.
    pub lock_spans: Vec<LockSpan>,
}

/// The simulated operating system.
pub struct OsWorld {
    pub(crate) layout: Layout,
    pub(crate) tuning: OsTuning,
    pub(crate) procs: ProcTable,
    pub(crate) runqs: Vec<RunQueue>,
    pub(crate) next_spawn_cluster: u8,
    pub(crate) frames: FrameDb,
    pub(crate) bufcache: BufferCache,
    pub(crate) disk: Disk,
    pub(crate) locks: LockTable,
    pub(crate) stats: OsStats,
    pub(crate) cpus: Vec<CpuCtx>,
    pub(crate) callouts: Vec<Callout>,
    pub(crate) global_tick: u64,
    pub(crate) sems: HashMap<u32, i64>,
    pub(crate) pipes: Vec<u32>,
    pub(crate) incore_inodes: HashMap<u32, usize>,
    pub(crate) file_sizes: HashMap<u32, u64>,
    pub(crate) last_disk_key: Option<(u32, u32)>,
    pub(crate) cold_cursor: u64,
    pub(crate) num_cpus: u8,
    pub(crate) disk_cpu: CpuId,
    pub(crate) probes: Option<Box<KernelProbes>>,
}

impl std::fmt::Debug for OsWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OsWorld")
            .field("live_procs", &self.procs.live())
            .field(
                "runq_len",
                &self.runqs.iter().map(|q| q.len()).sum::<usize>(),
            )
            .field("global_tick", &self.global_tick)
            .finish_non_exhaustive()
    }
}

impl OsWorld {
    /// Builds the OS for a machine with `num_cpus` CPUs and
    /// `memory_bytes` of memory.
    pub fn new(num_cpus: u8, memory_bytes: u64, tuning: OsTuning) -> Self {
        let text_copies = if tuning.replicate_os_text {
            tuning.clusters.max(1)
        } else {
            1
        };
        let layout = Layout::with_order_and_replicas(
            memory_bytes,
            tuning
                .layout_order
                .clone()
                .unwrap_or_else(|| Rid::ALL.to_vec()),
            text_copies,
        );
        let frames = FrameDb::new(layout.frame_pool_first(), layout.frame_pool_end());
        let first_tick = tuning.clock_tick_cycles;
        OsWorld {
            frames,
            bufcache: BufferCache::new(sizes::NBUF as usize),
            disk: Disk::new(tuning.disk_latency_cycles, tuning.disk_jitter_cycles),
            locks: LockTable::new(),
            stats: OsStats::new(num_cpus as usize),
            procs: ProcTable::new(sizes::NPROC as usize),
            runqs: (0..if tuning.distributed_runq {
                tuning.clusters.max(1)
            } else {
                1
            })
                .map(|_| RunQueue::new(tuning.policy))
                .collect(),
            next_spawn_cluster: 0,
            cpus: (0..num_cpus).map(|_| CpuCtx::new(first_tick)).collect(),
            callouts: Vec::new(),
            global_tick: 0,
            sems: HashMap::new(),
            pipes: vec![0; sizes::NPIPE as usize],
            incore_inodes: HashMap::new(),
            file_sizes: HashMap::new(),
            last_disk_key: None,
            cold_cursor: 0,
            num_cpus,
            disk_cpu: CpuId(0),
            probes: None,
            layout,
            tuning,
        }
    }

    /// Serializes the complete dynamic OS state into `w`.
    ///
    /// Configuration-derived state (layout, tuning, service latencies)
    /// is not written; [`OsWorld::restore_snapshot`] rebuilds it from
    /// the same constructor arguments. Observability probes are never
    /// part of a snapshot — a restored world starts with probes off.
    /// Maps are written with sorted keys so snapshot bytes are a
    /// deterministic function of state, making byte equality a valid
    /// state-equality witness.
    ///
    /// # Panics
    ///
    /// Panics if any live task does not implement
    /// [`UserTask::save`].
    pub fn save_snapshot(&self, w: &mut crate::snap::SnapWriter) {
        w.u8(self.num_cpus);
        let mut saver = crate::snap::TaskSaver::new(w);
        self.procs.save(&mut saver);
        let w = saver.writer();
        w.usize(self.runqs.len());
        for q in &self.runqs {
            q.save(w);
        }
        w.u8(self.next_spawn_cluster);
        self.frames.save(w);
        self.bufcache.save(w);
        self.disk.save(w);
        self.locks.save(w);
        self.stats.save(w);
        for cpu in &self.cpus {
            cpu.save(w);
        }
        w.usize(self.callouts.len());
        for c in &self.callouts {
            w.u64(c.due_tick);
            crate::snap::save_chan(w, &c.chan);
        }
        w.u64(self.global_tick);
        let mut sems: Vec<u32> = self.sems.keys().copied().collect();
        sems.sort_unstable();
        w.usize(sems.len());
        for k in sems {
            w.u32(k);
            w.i64(self.sems[&k]);
        }
        w.usize(self.pipes.len());
        for p in &self.pipes {
            w.u32(*p);
        }
        let mut inos: Vec<u32> = self.incore_inodes.keys().copied().collect();
        inos.sort_unstable();
        w.usize(inos.len());
        for k in inos {
            w.u32(k);
            w.usize(self.incore_inodes[&k]);
        }
        let mut sizes: Vec<u32> = self.file_sizes.keys().copied().collect();
        sizes.sort_unstable();
        w.usize(sizes.len());
        for k in sizes {
            w.u32(k);
            w.u64(self.file_sizes[&k]);
        }
        match self.last_disk_key {
            None => w.bool(false),
            Some((a, b)) => {
                w.bool(true);
                w.u32(a);
                w.u32(b);
            }
        }
        w.u64(self.cold_cursor);
    }

    /// Reconstructs a world from a snapshot written by
    /// [`OsWorld::save_snapshot`]. The constructor arguments must match
    /// the saved world's; `factory` maps task tags back to concrete
    /// workload types.
    pub fn restore_snapshot(
        num_cpus: u8,
        memory_bytes: u64,
        tuning: OsTuning,
        factory: &dyn crate::snap::TaskFactory,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<Self, crate::snap::SnapError> {
        use crate::snap::SnapError;
        let mut os = OsWorld::new(num_cpus, memory_bytes, tuning);
        if r.u8()? != os.num_cpus {
            return Err(SnapError::Corrupt("os cpu count"));
        }
        let mut restorer = crate::snap::TaskRestorer::new(r, factory);
        os.procs.load(&mut restorer)?;
        let r = restorer.reader();
        if r.usize()? != os.runqs.len() {
            return Err(SnapError::Corrupt("run queue count"));
        }
        for q in &mut os.runqs {
            q.load(r)?;
        }
        os.next_spawn_cluster = r.u8()?;
        os.frames.load(r)?;
        os.bufcache.load(r)?;
        os.disk.load(r)?;
        os.locks.load(r)?;
        os.stats.load(r)?;
        for cpu in &mut os.cpus {
            cpu.load(r)?;
        }
        let n = r.usize()?;
        os.callouts.clear();
        for _ in 0..n {
            os.callouts.push(Callout {
                due_tick: r.u64()?,
                chan: crate::snap::load_chan(r)?,
            });
        }
        os.global_tick = r.u64()?;
        let n = r.usize()?;
        os.sems.clear();
        for _ in 0..n {
            let k = r.u32()?;
            let v = r.i64()?;
            os.sems.insert(k, v);
        }
        if r.usize()? != os.pipes.len() {
            return Err(SnapError::Corrupt("pipe count"));
        }
        for p in &mut os.pipes {
            *p = r.u32()?;
        }
        let n = r.usize()?;
        os.incore_inodes.clear();
        for _ in 0..n {
            let k = r.u32()?;
            let v = r.usize()?;
            os.incore_inodes.insert(k, v);
        }
        let n = r.usize()?;
        os.file_sizes.clear();
        for _ in 0..n {
            let k = r.u32()?;
            let v = r.u64()?;
            os.file_sizes.insert(k, v);
        }
        os.last_disk_key = if r.bool()? {
            Some((r.u32()?, r.u32()?))
        } else {
            None
        };
        os.cold_cursor = r.u64()?;
        Ok(os)
    }

    /// Turns on kernel-side observability: the lock-table probes, the
    /// run-queue probes, and the execution counters. Enable at the
    /// measurement-window start `now` so warmup activity is excluded;
    /// locks still held from warmup are seeded as truncated spans
    /// clipped at `now`.
    pub fn enable_obs(&mut self, now: u64) {
        self.locks.enable_obs(now);
        for q in &mut self.runqs {
            q.enable_obs();
        }
        if self.probes.is_none() {
            self.probes = Some(Box::default());
        }
    }

    /// Detaches everything the kernel probes collected, disabling them.
    /// Lock intervals still open at the window end `now` are closed
    /// there as truncated spans. Returns `None` when observability was
    /// never enabled.
    pub fn take_obs(&mut self, now: u64) -> Option<Box<KernelObsReport>> {
        let probes = self.probes.take()?;
        let mut sched = SchedObs::default();
        for q in &mut self.runqs {
            if let Some(s) = q.take_obs() {
                sched.merge(&s);
            }
        }
        let (lock_profiles, lock_spans) = match self.locks.take_obs(now) {
            Some(obs) => {
                let profiles = obs
                    .profiles()
                    .into_iter()
                    .map(|(id, st)| (id, st.clone()))
                    .collect();
                (profiles, obs.into_spans())
            }
            None => (Vec::new(), Vec::new()),
        };
        Some(Box::new(KernelObsReport {
            probes: *probes,
            sched,
            lock_profiles,
            lock_spans,
        }))
    }

    /// The kernel layout (symbol table), needed by the trace
    /// postprocessor.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The cluster `cpu` belongs to.
    pub(crate) fn cluster_of(&self, cpu: CpuId) -> u8 {
        let clusters = self.tuning.clusters.max(1);
        let per = (self.num_cpus / clusters).max(1);
        (cpu.0 / per).min(clusters - 1)
    }

    /// The run-queue index serving `cpu`.
    pub(crate) fn runq_index(&self, cpu: CpuId) -> usize {
        if self.runqs.len() <= 1 {
            0
        } else {
            self.cluster_of(cpu) as usize % self.runqs.len()
        }
    }

    /// Enqueues a process on the queue of its last CPU's cluster (or
    /// round-robin for fresh processes). Returns the queue index used.
    pub(crate) fn enqueue_proc(&mut self, slot: ProcSlot) -> usize {
        let idx = if self.runqs.len() <= 1 {
            0
        } else {
            match self.procs.get(slot).and_then(|p| p.last_cpu) {
                Some(cpu) => self.runq_index(cpu),
                None => {
                    let c = self.next_spawn_cluster as usize % self.runqs.len();
                    self.next_spawn_cluster = self.next_spawn_cluster.wrapping_add(1);
                    c
                }
            }
        };
        self.runqs[idx].enqueue(slot);
        idx
    }

    /// Whether any run queue has work visible to `cpu` (its own
    /// cluster's queue, or any queue when stealing is allowed).
    pub(crate) fn any_runnable(&self, cpu: CpuId) -> bool {
        if self.runqs.len() <= 1 {
            return !self.runqs[0].is_empty();
        }
        // Own cluster first; stealing makes all queues visible.
        let own = self.runq_index(cpu);
        !self.runqs[own].is_empty() || self.runqs.iter().any(|q| !q.is_empty())
    }

    /// Initializes the machine's page-home table for cluster mode:
    /// kernel structures live in cluster 0's memory, each text replica
    /// in its own cluster (the Section 6 replication).
    pub fn init_page_homes(&self, m: &mut Machine) {
        if self.tuning.clusters <= 1 {
            return;
        }
        for k in 1..self.layout.replicas() {
            let (first, pages) = self.layout.replica_page_range(k);
            for p in 0..pages {
                m.set_page_home(Ppn(first.0 + p), k);
            }
        }
    }

    /// The tuning in effect.
    pub fn tuning(&self) -> &OsTuning {
        &self.tuning
    }

    /// Ground-truth statistics.
    pub fn stats(&self) -> &OsStats {
        &self.stats
    }

    /// Lock statistics.
    pub fn locks(&self) -> &LockTable {
        &self.locks
    }

    /// Number of live processes.
    pub fn live_processes(&self) -> usize {
        self.procs.live()
    }

    /// Spawns an initial process running `task` (ready to run).
    /// Returns its slot.
    ///
    /// # Panics
    ///
    /// Panics if the process table is full.
    pub fn spawn_initial(&mut self, task: Box<dyn UserTask>) -> ProcSlot {
        let slot = self
            .procs
            .spawn(task, None, self.tuning.quantum_ticks, self.tuning.seed)
            .expect("process table full at boot");
        self.enqueue_proc(slot);
        slot
    }

    /// Spawns an initial process pinned to one CPU (the paper's network
    /// functions run on CPU 1 only).
    ///
    /// # Panics
    ///
    /// Panics if the process table is full.
    pub fn spawn_initial_pinned(&mut self, task: Box<dyn UserTask>, cpu: CpuId) -> ProcSlot {
        let slot = self.spawn_initial(task);
        if let Some(p) = self.procs.get_mut(slot) {
            p.pinned_cpu = Some(cpu);
        }
        slot
    }

    /// Emits the trace-start state dump (the paper's tracing system
    /// call): a `TraceStart` marker, the current TLB contents of every
    /// CPU, and the running pid of every CPU.
    pub fn emit_trace_start(&mut self, m: &mut Machine) {
        self.emit(m, CpuId(0), OsEvent::TraceStart);
        for c in 0..self.num_cpus {
            let cpu = CpuId(c);
            let snap = m.tlb(cpu).snapshot();
            for (index, e) in snap {
                self.emit(
                    m,
                    cpu,
                    OsEvent::TlbSet {
                        index: index as u32,
                        vpn: e.vpn.0,
                        ppn: e.ppn.0,
                        pid: e.asid,
                    },
                );
            }
            let pid = self.cpus[cpu.index()]
                .running
                .and_then(|s| self.procs.get(s))
                .map_or(u32::MAX, |p| p.pid.0);
            self.emit(m, cpu, OsEvent::PidChange { pid });
        }
    }

    /// Emits one instrumentation event as its escape sequence.
    pub(crate) fn emit(&mut self, m: &mut Machine, cpu: CpuId, ev: OsEvent) {
        if let Some(p) = &mut self.probes {
            p.escapes[ev.opcode() as usize] += 1;
        }
        for addr in ev.encode() {
            let out = m.uncached_read(cpu, addr);
            self.stats.escape_reads += 1;
            self.stats.escape_cycles += out.cycles;
        }
    }

    /// An instruction-fetch window over a whole routine.
    pub(crate) fn win(&self, rid: Rid) -> KOp {
        let (base, len) = self.layout.routine_range(rid);
        KOp::fetch(base, len)
    }

    /// An instruction-fetch window over slice `part` of `parts` of a
    /// routine (hot-path partial execution).
    pub(crate) fn win_part(&self, rid: Rid, part: u32, parts: u32) -> KOp {
        let (base, len) = self.layout.routine_range(rid);
        let piece = len / parts;
        KOp::fetch(base.add((part * piece) as u64), piece.max(32))
    }

    /// A rotating window of `bytes` into a cold-text routine. Kernel
    /// paths are long stretches of loop-less, low-density code; the hot
    /// routine windows model the dense part and these rotating cold
    /// windows model the branchy remainder (error paths, device layers,
    /// accounting), which is what gives the OS its large instruction
    /// footprint in the paper.
    pub(crate) fn cold_win(&mut self, rid: Rid, bytes: u32) -> KOp {
        let (base, len) = self.layout.routine_range(rid);
        let len = len as u64;
        let bytes = (bytes as u64).min(len);
        self.cold_cursor = self.cold_cursor.wrapping_add(0x260 * 7);
        let off = (self.cold_cursor % (len - bytes + 1)) & !15;
        KOp::fetch(base.add(off), bytes as u32)
    }

    /// Advances the CPU whose clock is furthest behind by one step.
    /// Returns `false` once no process exists anywhere (fully quiesced).
    pub fn step_earliest(&mut self, m: &mut Machine) -> bool {
        let cpu = m.earliest_cpu();
        self.step(m, cpu)
    }

    /// Advances `cpu` by one micro-step. Returns `false` when the whole
    /// system is quiesced (no work anywhere, ever again).
    pub fn step(&mut self, m: &mut Machine, cpu: CpuId) -> bool {
        let i = cpu.index();
        let before = m.now(cpu);

        if self.cpus[i].dispatch.is_none() {
            self.deliver_interrupts(m, cpu);
        }

        let mode = self.current_mode(cpu);
        if self.cpus[i].dispatch.is_some() {
            self.run_frame(m, cpu, FrameLoc::Dispatch);
        } else if !self.cpus[i].intr_stack.is_empty() {
            self.run_frame(m, cpu, FrameLoc::Intr);
        } else if let Some(slot) = self.cpus[i].running {
            if self.procs.get(slot).is_some_and(|p| p.in_kernel()) {
                self.run_frame(m, cpu, FrameLoc::Proc(slot));
            } else {
                self.step_user(m, cpu, slot);
            }
        } else {
            self.step_idle(m, cpu);
        }

        self.settle(m, cpu);

        let mut delta = m.now(cpu) - before;
        if delta == 0 {
            // Every step must advance time so the engine makes progress.
            m.advance(cpu, 1);
            delta = 1;
        }
        self.stats.cycles[i].add(mode, delta);

        self.procs.live() > 0
    }

    /// Mode the upcoming step executes in (for cycle accounting).
    fn current_mode(&self, cpu: CpuId) -> Mode {
        let ctx = &self.cpus[cpu.index()];
        if ctx.dispatch.is_some() || !ctx.intr_stack.is_empty() {
            Mode::Kernel
        } else if let Some(slot) = ctx.running {
            if self.procs.get(slot).is_some_and(|p| p.in_kernel()) {
                Mode::Kernel
            } else {
                Mode::User
            }
        } else {
            Mode::Idle
        }
    }

    fn account_miss(&mut self, mode: Mode, instr: bool, missed: bool) {
        if missed {
            let mc = self.stats.misses_mut(mode);
            if instr {
                mc.instr += 1;
            } else {
                mc.data += 1;
            }
        }
    }

    pub(crate) fn frame_mut(&mut self, cpu: CpuId, loc: FrameLoc) -> &mut KFrame {
        match loc {
            FrameLoc::Dispatch => self.cpus[cpu.index()]
                .dispatch
                .as_mut()
                .expect("dispatch frame missing"),
            FrameLoc::Intr => self.cpus[cpu.index()]
                .intr_stack
                .last_mut()
                .expect("interrupt frame missing"),
            FrameLoc::Proc(slot) => self
                .procs
                .get_mut(slot)
                .expect("process missing")
                .kstack
                .last_mut()
                .expect("process kernel frame missing"),
        }
    }

    /// Pushes a kernel frame for an operation and emits `EnterOs`.
    pub(crate) fn push_op_frame(
        &mut self,
        m: &mut Machine,
        cpu: CpuId,
        loc: FrameLoc,
        frame: KFrame,
    ) {
        let class = frame.class;
        self.emit(m, cpu, OsEvent::EnterOs(class));
        self.stats.count_op(class);
        self.cpus[cpu.index()].in_os = true;
        match loc {
            FrameLoc::Dispatch => unreachable!("dispatch frames are not operations"),
            FrameLoc::Intr => self.cpus[cpu.index()].intr_stack.push(frame),
            FrameLoc::Proc(slot) => self
                .procs
                .get_mut(slot)
                .expect("process missing")
                .kstack
                .push(frame),
        }
    }

    /// Installs a dispatch frame (part of the current operation; no
    /// markers).
    pub(crate) fn set_dispatch(&mut self, cpu: CpuId, frame: KFrame) {
        let ctx = &mut self.cpus[cpu.index()];
        debug_assert!(ctx.dispatch.is_none(), "nested dispatch");
        ctx.in_os = true;
        ctx.dispatch = Some(frame);
    }

    /// Executes one micro-op of the frame at `loc`.
    fn run_frame(&mut self, m: &mut Machine, cpu: CpuId, loc: FrameLoc) {
        let mode = Mode::Kernel;
        let Some(op) = self.frame_mut(cpu, loc).ops.pop_front() else {
            self.finish_frame(m, cpu, loc);
            return;
        };
        if let Some(p) = &mut self.probes {
            p.kop[op.kind_index()] += 1;
        }
        match op {
            KOp::IFetch { cur, end } => {
                // Fetch the remainder of the current block, from the
                // cluster-local text replica when replication is on.
                let block_end = (cur | (BLOCK_SIZE - 1)) + 1;
                let stop = block_end.min(end);
                let instrs = ((stop - cur) / 4).max(1) as u32;
                let fetch_addr = if self.tuning.replicate_os_text {
                    self.layout
                        .replicate_text_addr(PAddr::new(cur), self.cluster_of(cpu))
                } else {
                    PAddr::new(cur)
                };
                let out = m.fetch(cpu, fetch_addr, instrs);
                self.account_miss(mode, true, out.missed_to_bus());
                if stop < end {
                    self.frame_mut(cpu, loc)
                        .ops
                        .push_front(KOp::IFetch { cur: stop, end });
                }
            }
            KOp::Data { addr, write } => {
                let out = m.data_access(cpu, PAddr::new(addr), write, 1);
                self.account_miss(mode, false, out.missed_to_bus() || out.upgraded);
            }
            KOp::DSweep {
                cur,
                end,
                stride,
                write,
            } => {
                let out = m.data_access(cpu, PAddr::new(cur), write, 1);
                self.account_miss(mode, false, out.missed_to_bus() || out.upgraded);
                let next = sweep_step(cur, stride);
                if next < end {
                    self.frame_mut(cpu, loc).ops.push_front(KOp::DSweep {
                        cur: next,
                        end,
                        stride,
                        write,
                    });
                }
            }
            KOp::Compute { cycles } => {
                let chunk = cycles.min(2_000);
                m.advance(cpu, chunk);
                if cycles > chunk {
                    self.frame_mut(cpu, loc).ops.push_front(KOp::Compute {
                        cycles: cycles - chunk,
                    });
                }
            }
            KOp::Escape(ev) => {
                self.emit(m, cpu, ev);
            }
            KOp::Lock(id) => {
                let now = m.now(cpu);
                m.sync_op(cpu);
                match self.locks.try_acquire(id, cpu, now) {
                    TryAcquire::Acquired => {
                        // Spin locks (everything except the Ino sleep
                        // locks) raise the interrupt priority level.
                        if id.family != LockFamily::Ino && id.family.is_kernel() {
                            self.cpus[cpu.index()].spl += 1;
                        }
                    }
                    TryAcquire::Busy => {
                        self.frame_mut(cpu, loc).ops.push_front(KOp::Lock(id));
                        if id.family == LockFamily::Ino {
                            // Inode locks are sleep locks: they are held
                            // across disk I/O, so spinning could starve
                            // the holder. Sleep until release.
                            self.do_swtch(m, cpu, Disposition::Sleep(Chan::InoWait(id.instance)));
                        } else {
                            m.advance(cpu, self.tuning.spin_retry_cycles);
                        }
                    }
                }
            }
            KOp::Unlock(id) => {
                let now = m.now(cpu);
                m.sync_op(cpu);
                if id.family != LockFamily::Ino && id.family.is_kernel() {
                    let spl = &mut self.cpus[cpu.index()].spl;
                    debug_assert!(*spl > 0, "unlock without spl");
                    *spl = spl.saturating_sub(1);
                }
                if id.family == LockFamily::Ino {
                    // Sleep locks may be released on a different CPU
                    // than they were acquired on (the holder slept).
                    self.locks.release_any(id, cpu, now);
                    let ops = self.wakeup_ops(Chan::InoWait(id.instance));
                    if !ops.is_empty() {
                        self.frame_mut(cpu, loc).push_front_ops(ops);
                    }
                } else {
                    self.locks.release(id, cpu, now);
                }
            }
            KOp::Call(call) => {
                self.handle_call(m, cpu, loc, call);
            }
        }
        // A frame that just became empty finishes on the next step,
        // keeping transitions simple.
        if self.peek_frame(cpu, loc).is_some_and(|f| f.ops.is_empty()) {
            self.finish_frame(m, cpu, loc);
        }
    }

    fn peek_frame(&self, cpu: CpuId, loc: FrameLoc) -> Option<&KFrame> {
        match loc {
            FrameLoc::Dispatch => self.cpus[cpu.index()].dispatch.as_ref(),
            FrameLoc::Intr => self.cpus[cpu.index()].intr_stack.last(),
            FrameLoc::Proc(slot) => self.procs.get(slot).and_then(|p| p.kstack.last()),
        }
    }

    fn finish_frame(&mut self, m: &mut Machine, cpu: CpuId, loc: FrameLoc) {
        let i = cpu.index();
        match loc {
            FrameLoc::Dispatch => {
                self.cpus[i].dispatch = None;
            }
            FrameLoc::Intr => {
                self.cpus[i].intr_stack.pop();
                self.emit(m, cpu, OsEvent::OpEnd);
                // Preempt only when the interrupt came in user mode
                // (the kernel is non-preemptible, as in IRIX 3.2).
                let user_below = self.cpus[i].intr_stack.is_empty()
                    && self.cpus[i]
                        .running
                        .and_then(|s| self.procs.get(s))
                        .is_some_and(|p| !p.in_kernel());
                if user_below && self.cpus[i].resched && self.cpus[i].dispatch.is_none() {
                    self.cpus[i].resched = false;
                    self.do_swtch(m, cpu, Disposition::Requeue);
                }
            }
            FrameLoc::Proc(slot) => {
                if let Some(p) = self.procs.get_mut(slot) {
                    p.kstack.pop();
                    let back_to_user = p.kstack.is_empty();
                    self.emit(m, cpu, OsEvent::OpEnd);
                    if back_to_user && self.cpus[i].resched && self.cpus[i].dispatch.is_none() {
                        self.cpus[i].resched = false;
                        self.do_swtch(m, cpu, Disposition::Requeue);
                    }
                }
            }
        }
    }

    /// Emits boundary events once a CPU fully leaves the OS or becomes
    /// idle.
    fn settle(&mut self, m: &mut Machine, cpu: CpuId) {
        let i = cpu.index();
        let os_active = {
            let ctx = &self.cpus[i];
            ctx.dispatch.is_some()
                || !ctx.intr_stack.is_empty()
                || ctx
                    .running
                    .and_then(|s| self.procs.get(s))
                    .is_some_and(|p| p.in_kernel())
        };
        if self.cpus[i].in_os && !os_active {
            self.cpus[i].in_os = false;
            self.emit(m, cpu, OsEvent::ExitOs);
        }
        if self.cpus[i].running.is_none() && !os_active && !self.cpus[i].idle {
            self.cpus[i].idle = true;
            self.emit(m, cpu, OsEvent::EnterIdle);
        }
    }

    /// Delivers due clock and disk interrupts.
    fn deliver_interrupts(&mut self, m: &mut Machine, cpu: CpuId) {
        let i = cpu.index();
        if self.cpus[i].intr_stack.len() >= 2 {
            return; // bounded nesting
        }
        if self.cpus[i].spl > 0 {
            return; // interrupts masked while spin locks are held
        }
        let now = m.now(cpu);
        if now >= self.cpus[i].next_tick_at {
            self.cpus[i].next_tick_at = now + self.tuning.clock_tick_cycles;
            if cpu.index() == 0 {
                self.global_tick += 1;
            }
            self.stats.clock_interrupts += 1;
            let frame = self.build_clock_frame(cpu);
            self.push_op_frame(m, cpu, FrameLoc::Intr, frame);
            return;
        }
        if self.cpus[i].pending_ipi > 0 {
            self.cpus[i].pending_ipi -= 1;
            self.stats.ipis += 1;
            let frame = self.build_ipi_frame(cpu);
            self.push_op_frame(m, cpu, FrameLoc::Intr, frame);
            return;
        }
        if cpu == self.disk_cpu {
            if let Some(t) = self.disk.next_completion() {
                if t <= now {
                    self.stats.disk_interrupts += 1;
                    let frame = self.build_disk_frame();
                    self.push_op_frame(m, cpu, FrameLoc::Intr, frame);
                }
            }
        }
    }

    /// Posts a TLB-shootdown IPI to every CPU except `from` (the
    /// translations themselves are dropped synchronously; the IPI models
    /// the interrupt cost on the remote CPUs).
    pub(crate) fn post_tlb_shootdown(&mut self, from: CpuId) {
        for i in 0..self.cpus.len() {
            if i != from.index() {
                self.cpus[i].pending_ipi = self.cpus[i].pending_ipi.saturating_add(1);
            }
        }
    }

    /// One idle-loop iteration: fetch the loop, poll the run queue,
    /// dispatch if work appeared.
    fn step_idle(&mut self, m: &mut Machine, cpu: CpuId) {
        let (base, len) = self.layout.routine_range(Rid::IdleLoop);
        let base = if self.tuning.replicate_os_text {
            self.layout.replicate_text_addr(base, self.cluster_of(cpu))
        } else {
            base
        };
        let out = m.fetch(cpu, base, (len / 4).clamp(1, 8));
        self.account_miss(Mode::Idle, true, out.missed_to_bus());
        let out = m.data_access(cpu, self.layout.run_queue(), false, 1);
        self.account_miss(Mode::Idle, false, out.missed_to_bus());
        m.advance(cpu, self.tuning.idle_iter_cycles);
        if self.any_runnable(cpu) {
            self.cpus[cpu.index()].idle = false;
            self.emit(m, cpu, OsEvent::ExitIdle);
            self.do_swtch(m, cpu, Disposition::FromIdle);
        }
    }

    /// Translates a user reference, pushing a fault frame on a miss.
    /// Returns the physical address when the access may proceed now.
    fn translate(
        &mut self,
        m: &mut Machine,
        cpu: CpuId,
        slot: ProcSlot,
        vaddr: VAddr,
        write: bool,
    ) -> Option<PAddr> {
        let vpn = vaddr.page();
        let proc = self.procs.get(slot).expect("running process exists");
        let asid = proc.pid.0;
        // Copy-on-write writes must trap even on a TLB hit (the real
        // machine maps COW pages read-only). The `cow_pages` counter
        // skips the page-table probe for processes with no COW pages.
        if write && proc.cow_pages > 0 {
            if let Some(pte) = proc.page_table.get(&vpn) {
                if pte.cow {
                    let frame = self.build_cow_fault_frame(slot, vpn);
                    self.push_op_frame(m, cpu, FrameLoc::Proc(slot), frame);
                    return None;
                }
            }
        }
        if let Some(ppn) = m.tlb_mut(cpu).lookup(vpn, asid) {
            return Some(ppn.base().add(vaddr.offset_in_page()));
        }
        // UTLB fast path.
        let frame = self.build_utlb_frame(slot, vpn, write);
        self.push_op_frame(m, cpu, FrameLoc::Proc(slot), frame);
        None
    }

    /// Executes one user micro-step of the running process.
    fn step_user(&mut self, m: &mut Machine, cpu: CpuId, slot: ProcSlot) {
        // Fetch the next task op if needed.
        let needs_op = self.procs.get(slot).is_some_and(|p| p.cur_uop.is_none());
        if needs_op {
            let now = m.now(cpu);
            let p = self.procs.get_mut(slot).unwrap();
            let pid = p.pid;
            // Split borrows: rng and task are different fields.
            let Process { rng, task, .. } = p;
            let mut env = TaskEnv { rng, pid, now };
            match task.next(&mut env) {
                Some(op) => p.cur_uop = Some(op),
                None => {
                    // Program finished: implicit exit.
                    let frame = self.build_syscall_frame(m, cpu, slot, SysReq::Exit);
                    self.push_op_frame(m, cpu, FrameLoc::Proc(slot), frame);
                    return;
                }
            }
        }

        let op = self
            .procs
            .get_mut(slot)
            .unwrap()
            .cur_uop
            .take()
            .expect("uop present");
        match op {
            UOp::Run { cur, end } => {
                let va = VAddr::new(cur);
                if let Some(pa) = self.translate(m, cpu, slot, va, false) {
                    let block_end = (cur | (BLOCK_SIZE - 1)) + 1;
                    let stop = block_end.min(end);
                    let instrs = ((stop - cur) / 4).max(1) as u32;
                    let out = m.fetch(cpu, pa, instrs);
                    self.account_miss(Mode::User, true, out.missed_to_bus());
                    if stop < end {
                        self.put_back_uop(slot, UOp::Run { cur: stop, end });
                    }
                } else {
                    self.put_back_uop(slot, UOp::Run { cur, end });
                }
            }
            UOp::RunLoop {
                base,
                len,
                iters,
                off,
            } => {
                let cur = base + off as u64;
                let va = VAddr::new(cur);
                if let Some(pa) = self.translate(m, cpu, slot, va, false) {
                    let block_end = (cur | (BLOCK_SIZE - 1)) + 1;
                    let stop = block_end.min(base + len as u64);
                    let instrs = ((stop - cur) / 4).max(1) as u32;
                    let out = m.fetch(cpu, pa, instrs);
                    self.account_miss(Mode::User, true, out.missed_to_bus());
                    let (new_off, new_iters) = if stop >= base + len as u64 {
                        (0, iters - 1)
                    } else {
                        ((stop - base) as u32, iters)
                    };
                    if new_iters > 0 {
                        self.put_back_uop(
                            slot,
                            UOp::RunLoop {
                                base,
                                len,
                                iters: new_iters,
                                off: new_off,
                            },
                        );
                    }
                } else {
                    self.put_back_uop(
                        slot,
                        UOp::RunLoop {
                            base,
                            len,
                            iters,
                            off,
                        },
                    );
                }
            }
            UOp::Touch { addr, write } => {
                let va = VAddr::new(addr);
                if let Some(pa) = self.translate(m, cpu, slot, va, write) {
                    let out = m.data_access(cpu, pa, write, 1);
                    self.account_miss(Mode::User, false, out.missed_to_bus() || out.upgraded);
                } else {
                    self.put_back_uop(slot, UOp::Touch { addr, write });
                }
            }
            UOp::Sweep {
                cur,
                end,
                stride,
                write,
            } => {
                let va = VAddr::new(cur);
                if let Some(pa) = self.translate(m, cpu, slot, va, write) {
                    let out = m.data_access(cpu, pa, write, 1);
                    self.account_miss(Mode::User, false, out.missed_to_bus() || out.upgraded);
                    let next = sweep_step(cur, stride);
                    if next < end {
                        self.put_back_uop(
                            slot,
                            UOp::Sweep {
                                cur: next,
                                end,
                                stride,
                                write,
                            },
                        );
                    }
                } else {
                    self.put_back_uop(
                        slot,
                        UOp::Sweep {
                            cur,
                            end,
                            stride,
                            write,
                        },
                    );
                }
            }
            UOp::Compute { cycles } => {
                let chunk = cycles.min(5_000);
                m.advance(cpu, chunk);
                if cycles > chunk {
                    self.put_back_uop(
                        slot,
                        UOp::Compute {
                            cycles: cycles - chunk,
                        },
                    );
                }
            }
            UOp::Walk {
                base,
                span,
                left,
                state,
                write_ratio,
            } => {
                let off = (state.wrapping_mul(0x5851_f42d_4c95_7f2d) >> 17) % span;
                let addr = base + (off & !3);
                let write = (state & 0xff) as u8 <= write_ratio;
                let va = VAddr::new(addr);
                if let Some(pa) = self.translate(m, cpu, slot, va, write) {
                    let out = m.data_access(cpu, pa, write, 2);
                    self.account_miss(Mode::User, false, out.missed_to_bus() || out.upgraded);
                    if left > 1 {
                        self.put_back_uop(
                            slot,
                            UOp::Walk {
                                base,
                                span,
                                left: left - 1,
                                state: state
                                    .wrapping_mul(6364136223846793005)
                                    .wrapping_add(1442695040888963407),
                                write_ratio,
                            },
                        );
                    }
                } else {
                    self.put_back_uop(
                        slot,
                        UOp::Walk {
                            base,
                            span,
                            left,
                            state,
                            write_ratio,
                        },
                    );
                }
            }
            UOp::Syscall(req) => {
                let frame = self.build_syscall_frame(m, cpu, slot, req);
                self.push_op_frame(m, cpu, FrameLoc::Proc(slot), frame);
            }
            UOp::LockAcq { lock, spins } => {
                let now = m.now(cpu);
                m.sync_op(cpu);
                let id = LockId::new(LockFamily::User, lock);
                match self.locks.try_acquire(id, cpu, now) {
                    TryAcquire::Acquired => {}
                    TryAcquire::Busy => {
                        let spins = spins + 1;
                        self.put_back_uop(slot, UOp::LockAcq { lock, spins });
                        if spins % self.tuning.user_spin_limit == 0 {
                            // The library gives up and naps.
                            self.stats.sginap_calls += 1;
                            let frame = self.build_syscall_frame(m, cpu, slot, SysReq::Sginap);
                            self.push_op_frame(m, cpu, FrameLoc::Proc(slot), frame);
                        } else {
                            m.advance(cpu, self.tuning.spin_retry_cycles);
                        }
                    }
                }
            }
            UOp::LockRel { lock } => {
                let now = m.now(cpu);
                m.sync_op(cpu);
                // The holder may have napped (`sginap`) since the
                // acquire and resumed on another CPU, so release on
                // the holding process's behalf.
                self.locks
                    .release_any(LockId::new(LockFamily::User, lock), cpu, now);
            }
        }
    }

    fn put_back_uop(&mut self, slot: ProcSlot, op: UOp) {
        if let Some(p) = self.procs.get_mut(slot) {
            debug_assert!(p.cur_uop.is_none());
            p.cur_uop = Some(op);
        }
    }

    /// Resolves (allocating silently if necessary) the frame backing a
    /// user page — used when the kernel itself must touch user memory at
    /// plan time (I/O buffers).
    pub(crate) fn resolve_user_page_now(&mut self, slot: ProcSlot, vpn: Vpn) -> Ppn {
        if let Some(pte) = self.procs.get(slot).unwrap().page_table.get(&vpn) {
            return pte.ppn;
        }
        let p = self.procs.get(slot).unwrap();
        let pid = p.pid;
        let fa = self
            .frames
            .alloc_colored(
                crate::vm::FrameUse::User {
                    pid,
                    vpn,
                    text: false,
                },
                false,
                (vpn.0 % 16) as u8,
            )
            .expect("frame pool exhausted during plan-time resolution");
        self.procs.get_mut(slot).unwrap().page_table.insert(
            vpn,
            Pte {
                ppn: fa.ppn,
                cow: false,
            },
        );
        fa.ppn
    }

    /// Physical address of the user I/O buffer page `k` of a process
    /// (by convention the first pages of its heap).
    pub(crate) fn user_io_buffer(&mut self, slot: ProcSlot, k: u64) -> PAddr {
        let vpn = Vpn(segs::DATA_BASE.page().0 + k as u32);
        self.resolve_user_page_now(slot, vpn).base()
    }

    /// The pid currently running on `cpu`, if any.
    pub fn running_pid(&self, cpu: CpuId) -> Option<Pid> {
        self.cpus[cpu.index()]
            .running
            .and_then(|s| self.procs.get(s))
            .map(|p| p.pid)
    }

    /// Sums outstanding work: run-queue length + live processes (used by
    /// drivers to decide when a finite workload has drained).
    pub fn quiesced(&self) -> bool {
        self.procs.live() == 0
    }

    /// Page size re-export for convenience.
    pub const PAGE: u64 = PAGE_SIZE;

    /// A human-readable snapshot of a CPU's execution state (debugging
    /// aid for stuck simulations).
    pub fn debug_cpu_state(&self, cpu: CpuId) -> String {
        let ctx = &self.cpus[cpu.index()];
        let front = |f: &KFrame| {
            format!(
                "{:?} (class {:?}, {} ops left)",
                f.ops.front(),
                f.class,
                f.ops.len()
            )
        };
        if let Some(f) = &ctx.dispatch {
            return format!("{cpu}: dispatch {}", front(f));
        }
        if let Some(f) = ctx.intr_stack.last() {
            return format!("{cpu}: intr {}", front(f));
        }
        if let Some(slot) = ctx.running {
            if let Some(p) = self.procs.get(slot) {
                if let Some(f) = p.kstack.last() {
                    return format!(
                        "{cpu}: {} pid{} kernel {}",
                        p.task.name(),
                        p.pid.0,
                        front(f)
                    );
                }
                return format!(
                    "{cpu}: {} pid{} user {:?}",
                    p.task.name(),
                    p.pid.0,
                    p.cur_uop
                );
            }
        }
        format!(
            "{cpu}: idle (runq lens {:?})",
            self.runqs.iter().map(|q| q.len()).collect::<Vec<_>>()
        )
    }

    /// Disk/buffer state summary (debugging aid).
    pub fn debug_fs_state(&self) -> String {
        format!(
            "disk queue {} next_completion {:?}; busy bufs: {:?}",
            self.disk.queue_len(),
            self.disk.next_completion(),
            (0..crate::layout::sizes::NBUF as usize)
                .filter(|&i| self.bufcache.is_busy(i))
                .collect::<Vec<_>>()
        )
    }

    /// Sleeping/ready process summary (debugging aid).
    pub fn debug_procs(&self) -> String {
        self.procs
            .iter()
            .map(|p| {
                let front = p
                    .kstack
                    .last()
                    .map(|f| format!("{:?}", f.ops.front()))
                    .unwrap_or_default();
                format!(
                    "pid{} {} {:?} kstack {} front {}",
                    p.pid.0,
                    p.task.name(),
                    p.state,
                    p.kstack.len(),
                    front
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(tuning: OsTuning) -> OsWorld {
        OsWorld::new(8, 32 * 1024 * 1024, tuning)
    }

    #[test]
    fn cluster_mapping_and_queue_index() {
        let w = world(OsTuning::clustered(2));
        assert_eq!(w.cluster_of(CpuId(0)), 0);
        assert_eq!(w.cluster_of(CpuId(3)), 0);
        assert_eq!(w.cluster_of(CpuId(4)), 1);
        assert_eq!(w.cluster_of(CpuId(7)), 1);
        assert_eq!(w.runq_index(CpuId(1)), 0);
        assert_eq!(w.runq_index(CpuId(6)), 1);
        assert_eq!(w.runqs.len(), 2);
    }

    #[test]
    fn flat_world_has_one_queue() {
        let w = world(OsTuning::default());
        assert_eq!(w.runqs.len(), 1);
        assert_eq!(w.runq_index(CpuId(7)), 0);
    }

    #[test]
    fn fresh_processes_round_robin_across_cluster_queues() {
        let mut w = world(OsTuning::clustered(2));
        let a = w.spawn_initial(Box::new(crate::user::ScriptTask::new("a", vec![])));
        let b = w.spawn_initial(Box::new(crate::user::ScriptTask::new("b", vec![])));
        let _ = (a, b);
        assert_eq!(w.runqs[0].len(), 1);
        assert_eq!(w.runqs[1].len(), 1);
        assert!(w.any_runnable(CpuId(0)));
        assert!(w.any_runnable(CpuId(7)));
    }

    #[test]
    fn replicated_layout_is_built_when_requested() {
        let w = world(OsTuning::clustered(4));
        assert_eq!(w.layout().replicas(), 4);
        let flat = world(OsTuning::default());
        assert_eq!(flat.layout().replicas(), 1);
    }

    #[test]
    fn clustered_tuning_enables_both_features() {
        let t = OsTuning::clustered(3);
        assert_eq!(t.clusters, 3);
        assert!(t.replicate_os_text);
        assert!(t.distributed_runq);
    }

    #[test]
    fn pinned_spawn_records_the_pin() {
        let mut w = world(OsTuning::default());
        let s = w.spawn_initial_pinned(
            Box::new(crate::user::ScriptTask::new("net", vec![])),
            CpuId(1),
        );
        assert_eq!(w.procs.get(s).unwrap().pinned_cpu, Some(CpuId(1)));
    }

    #[test]
    fn page_homes_follow_replicas() {
        use oscar_machine::{Machine, MachineConfig};
        let w = world(OsTuning::clustered(2));
        let mut m = Machine::new(MachineConfig::clustered(8, 2, 30));
        w.init_page_homes(&mut m);
        let (first, pages) = w.layout().replica_page_range(1);
        assert!(pages > 0);
        assert_eq!(m.page_home(first), 1);
        assert_eq!(m.page_home(Ppn(0)), 0, "canonical text is cluster 0");
    }
}
