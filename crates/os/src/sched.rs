//! The run queue.
//!
//! IRIX 3.2 has a single run queue shared by all CPUs and protected by
//! `Runqlk`; processes migrate freely, which the paper identifies as the
//! second major source of OS misses. The optional cache-affinity mode
//! implements the mitigation the paper points to (Squillante/Lazowska,
//! Vaswani/Zahorjan): a CPU prefers a runnable process that last ran on
//! it, falling back to the queue head for load balance.

use std::collections::VecDeque;

use oscar_machine::addr::CpuId;
use oscar_obs::Log2Histogram;

use crate::types::ProcSlot;

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Plain FIFO: the queue head runs next wherever a CPU frees up
    /// (free migration, as measured in the paper).
    #[default]
    FreeMigration,
    /// Cache affinity: prefer a process whose last CPU is the dispatching
    /// CPU; take the head only if none matches.
    Affinity,
}

/// Run-queue probes, kept only while observability is enabled.
#[derive(Debug, Default)]
pub struct SchedObs {
    /// `setrq` calls.
    pub enqueues: u64,
    /// Affinity-mode picks that found a process whose last CPU matched.
    pub picks_affinity: u64,
    /// Picks that took the queue head (free migration, or affinity
    /// fallback).
    pub picks_head: u64,
    /// Targeted removals (wakeup/reap races).
    pub removes: u64,
    /// Queue depth sampled after each enqueue.
    pub depth: Log2Histogram,
}

impl SchedObs {
    /// Folds another queue's probes into this one (cluster mode runs
    /// one queue per cluster).
    pub fn merge(&mut self, other: &SchedObs) {
        self.enqueues += other.enqueues;
        self.picks_affinity += other.picks_affinity;
        self.picks_head += other.picks_head;
        self.removes += other.removes;
        self.depth.merge(&other.depth);
    }
}

/// The shared run queue.
#[derive(Debug, Default)]
pub struct RunQueue {
    q: VecDeque<ProcSlot>,
    policy: SchedPolicy,
    obs: Option<Box<SchedObs>>,
}

impl RunQueue {
    /// Serializes the queued slots (policy comes from the
    /// configuration; observers are never part of a snapshot).
    pub(crate) fn save(&self, w: &mut crate::snap::SnapWriter) {
        w.usize(self.q.len());
        for s in &self.q {
            w.u16(s.0);
        }
    }

    /// Restores a queue written by [`RunQueue::save`] into a queue
    /// constructed with the same policy.
    pub(crate) fn load(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        let n = r.usize()?;
        self.q.clear();
        for _ in 0..n {
            self.q.push_back(crate::types::ProcSlot(r.u16()?));
        }
        Ok(())
    }

    /// Creates an empty run queue with the given policy.
    pub fn new(policy: SchedPolicy) -> Self {
        RunQueue {
            q: VecDeque::new(),
            policy,
            obs: None,
        }
    }

    /// The policy in effect.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Turns on the scheduler probes.
    pub fn enable_obs(&mut self) {
        if self.obs.is_none() {
            self.obs = Some(Box::default());
        }
    }

    /// Detaches and returns the probe data, disabling the probes.
    pub fn take_obs(&mut self) -> Option<Box<SchedObs>> {
        self.obs.take()
    }

    /// Appends a process (`setrq`).
    pub fn enqueue(&mut self, slot: ProcSlot) {
        debug_assert!(!self.q.contains(&slot), "{slot:?} already queued");
        self.q.push_back(slot);
        if let Some(obs) = &mut self.obs {
            obs.enqueues += 1;
            obs.depth.record(self.q.len() as u64);
        }
    }

    /// Picks the next process for `cpu` (`choose_proc`), honoring the
    /// policy. `last_cpu_of` reports where a candidate last ran;
    /// `eligible` filters out processes pinned to other CPUs.
    pub fn pick(
        &mut self,
        cpu: CpuId,
        eligible: impl Fn(ProcSlot) -> bool,
        last_cpu_of: impl Fn(ProcSlot) -> Option<CpuId>,
    ) -> Option<ProcSlot> {
        match self.policy {
            SchedPolicy::FreeMigration => {
                let pos = self.q.iter().position(|&s| eligible(s))?;
                if let Some(obs) = &mut self.obs {
                    obs.picks_head += 1;
                }
                self.q.remove(pos)
            }
            SchedPolicy::Affinity => {
                if let Some(pos) = self
                    .q
                    .iter()
                    .position(|&s| eligible(s) && last_cpu_of(s) == Some(cpu))
                {
                    if let Some(obs) = &mut self.obs {
                        obs.picks_affinity += 1;
                    }
                    self.q.remove(pos)
                } else {
                    let pos = self.q.iter().position(|&s| eligible(s))?;
                    if let Some(obs) = &mut self.obs {
                        obs.picks_head += 1;
                    }
                    self.q.remove(pos)
                }
            }
        }
    }

    /// Number of queued processes.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Removes a specific process (used when a sleeping wakeup races a
    /// reap).
    pub fn remove(&mut self, slot: ProcSlot) -> bool {
        if let Some(pos) = self.q.iter().position(|&s| s == slot) {
            self.q.remove(pos);
            if let Some(obs) = &mut self.obs {
                obs.removes += 1;
            }
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: CpuId = CpuId(0);
    const C1: CpuId = CpuId(1);

    #[test]
    fn fifo_order_under_free_migration() {
        let mut rq = RunQueue::new(SchedPolicy::FreeMigration);
        rq.enqueue(ProcSlot(1));
        rq.enqueue(ProcSlot(2));
        assert_eq!(rq.pick(C0, |_| true, |_| None), Some(ProcSlot(1)));
        assert_eq!(rq.pick(C1, |_| true, |_| None), Some(ProcSlot(2)));
        assert_eq!(rq.pick(C0, |_| true, |_| None), None);
    }

    #[test]
    fn affinity_prefers_matching_last_cpu() {
        let mut rq = RunQueue::new(SchedPolicy::Affinity);
        rq.enqueue(ProcSlot(1)); // last ran on C1
        rq.enqueue(ProcSlot(2)); // last ran on C0
        let last = |s: ProcSlot| {
            if s == ProcSlot(1) {
                Some(C1)
            } else {
                Some(C0)
            }
        };
        assert_eq!(rq.pick(C0, |_| true, last), Some(ProcSlot(2)));
        // Fallback to head when nothing matches.
        assert_eq!(rq.pick(C0, |_| true, last), Some(ProcSlot(1)));
    }

    #[test]
    fn pinned_processes_are_skipped() {
        let mut rq = RunQueue::new(SchedPolicy::FreeMigration);
        rq.enqueue(ProcSlot(1)); // pinned elsewhere
        rq.enqueue(ProcSlot(2));
        let eligible = |s: ProcSlot| s != ProcSlot(1);
        assert_eq!(rq.pick(C0, eligible, |_| None), Some(ProcSlot(2)));
        assert_eq!(rq.len(), 1, "pinned process stays queued");
    }

    #[test]
    fn remove_specific() {
        let mut rq = RunQueue::new(SchedPolicy::FreeMigration);
        rq.enqueue(ProcSlot(1));
        rq.enqueue(ProcSlot(2));
        assert!(rq.remove(ProcSlot(1)));
        assert!(!rq.remove(ProcSlot(1)));
        assert_eq!(rq.len(), 1);
    }

    #[test]
    fn obs_counts_enqueues_picks_and_depth() {
        let mut rq = RunQueue::new(SchedPolicy::Affinity);
        rq.enable_obs();
        rq.enqueue(ProcSlot(1)); // depth 1
        rq.enqueue(ProcSlot(2)); // depth 2
        let last = |s: ProcSlot| (s == ProcSlot(2)).then_some(C0);
        assert_eq!(rq.pick(C0, |_| true, last), Some(ProcSlot(2)));
        assert_eq!(rq.pick(C0, |_| true, last), Some(ProcSlot(1)));
        rq.enqueue(ProcSlot(3));
        assert!(rq.remove(ProcSlot(3)));
        let obs = rq.take_obs().expect("obs enabled");
        assert_eq!(obs.enqueues, 3);
        assert_eq!(obs.picks_affinity, 1);
        assert_eq!(obs.picks_head, 1);
        assert_eq!(obs.removes, 1);
        assert_eq!(obs.depth.count(), 3);
        assert_eq!(obs.depth.max(), 2);
        assert!(rq.take_obs().is_none(), "probes off after take");
    }

    #[test]
    fn obs_merge_folds_counters() {
        let mut a = SchedObs {
            enqueues: 2,
            ..SchedObs::default()
        };
        a.depth.record(1);
        let mut b = SchedObs {
            enqueues: 3,
            picks_head: 1,
            ..SchedObs::default()
        };
        b.depth.record(4);
        a.merge(&b);
        assert_eq!(a.enqueues, 5);
        assert_eq!(a.picks_head, 1);
        assert_eq!(a.depth.count(), 2);
        assert_eq!(a.depth.max(), 4);
    }
}
