//! The run queue.
//!
//! IRIX 3.2 has a single run queue shared by all CPUs and protected by
//! `Runqlk`; processes migrate freely, which the paper identifies as the
//! second major source of OS misses. The optional cache-affinity mode
//! implements the mitigation the paper points to (Squillante/Lazowska,
//! Vaswani/Zahorjan): a CPU prefers a runnable process that last ran on
//! it, falling back to the queue head for load balance.

use std::collections::VecDeque;

use oscar_machine::addr::CpuId;

use crate::types::ProcSlot;

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Plain FIFO: the queue head runs next wherever a CPU frees up
    /// (free migration, as measured in the paper).
    #[default]
    FreeMigration,
    /// Cache affinity: prefer a process whose last CPU is the dispatching
    /// CPU; take the head only if none matches.
    Affinity,
}

/// The shared run queue.
#[derive(Debug, Default)]
pub struct RunQueue {
    q: VecDeque<ProcSlot>,
    policy: SchedPolicy,
}

impl RunQueue {
    /// Creates an empty run queue with the given policy.
    pub fn new(policy: SchedPolicy) -> Self {
        RunQueue {
            q: VecDeque::new(),
            policy,
        }
    }

    /// The policy in effect.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Appends a process (`setrq`).
    pub fn enqueue(&mut self, slot: ProcSlot) {
        debug_assert!(!self.q.contains(&slot), "{slot:?} already queued");
        self.q.push_back(slot);
    }

    /// Picks the next process for `cpu` (`choose_proc`), honoring the
    /// policy. `last_cpu_of` reports where a candidate last ran;
    /// `eligible` filters out processes pinned to other CPUs.
    pub fn pick(
        &mut self,
        cpu: CpuId,
        eligible: impl Fn(ProcSlot) -> bool,
        last_cpu_of: impl Fn(ProcSlot) -> Option<CpuId>,
    ) -> Option<ProcSlot> {
        match self.policy {
            SchedPolicy::FreeMigration => {
                let pos = self.q.iter().position(|&s| eligible(s))?;
                self.q.remove(pos)
            }
            SchedPolicy::Affinity => {
                if let Some(pos) = self
                    .q
                    .iter()
                    .position(|&s| eligible(s) && last_cpu_of(s) == Some(cpu))
                {
                    self.q.remove(pos)
                } else {
                    let pos = self.q.iter().position(|&s| eligible(s))?;
                    self.q.remove(pos)
                }
            }
        }
    }

    /// Number of queued processes.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Removes a specific process (used when a sleeping wakeup races a
    /// reap).
    pub fn remove(&mut self, slot: ProcSlot) -> bool {
        if let Some(pos) = self.q.iter().position(|&s| s == slot) {
            self.q.remove(pos);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: CpuId = CpuId(0);
    const C1: CpuId = CpuId(1);

    #[test]
    fn fifo_order_under_free_migration() {
        let mut rq = RunQueue::new(SchedPolicy::FreeMigration);
        rq.enqueue(ProcSlot(1));
        rq.enqueue(ProcSlot(2));
        assert_eq!(rq.pick(C0, |_| true, |_| None), Some(ProcSlot(1)));
        assert_eq!(rq.pick(C1, |_| true, |_| None), Some(ProcSlot(2)));
        assert_eq!(rq.pick(C0, |_| true, |_| None), None);
    }

    #[test]
    fn affinity_prefers_matching_last_cpu() {
        let mut rq = RunQueue::new(SchedPolicy::Affinity);
        rq.enqueue(ProcSlot(1)); // last ran on C1
        rq.enqueue(ProcSlot(2)); // last ran on C0
        let last = |s: ProcSlot| {
            if s == ProcSlot(1) {
                Some(C1)
            } else {
                Some(C0)
            }
        };
        assert_eq!(rq.pick(C0, |_| true, last), Some(ProcSlot(2)));
        // Fallback to head when nothing matches.
        assert_eq!(rq.pick(C0, |_| true, last), Some(ProcSlot(1)));
    }

    #[test]
    fn pinned_processes_are_skipped() {
        let mut rq = RunQueue::new(SchedPolicy::FreeMigration);
        rq.enqueue(ProcSlot(1)); // pinned elsewhere
        rq.enqueue(ProcSlot(2));
        let eligible = |s: ProcSlot| s != ProcSlot(1);
        assert_eq!(rq.pick(C0, eligible, |_| None), Some(ProcSlot(2)));
        assert_eq!(rq.len(), 1, "pinned process stays queued");
    }

    #[test]
    fn remove_specific() {
        let mut rq = RunQueue::new(SchedPolicy::FreeMigration);
        rq.enqueue(ProcSlot(1));
        rq.enqueue(ProcSlot(2));
        assert!(rq.remove(ProcSlot(1)));
        assert!(!rq.remove(ProcSlot(1)));
        assert_eq!(rq.len(), 1);
    }
}
