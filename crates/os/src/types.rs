//! Identifiers and small enums shared across the kernel model.

use std::fmt;

/// A process identifier. Monotonically increasing; never reused within a
/// run (the process-table *slot* is reused, the pid is not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// A slot in the process table (bounded; reused after exit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcSlot(pub u16);

impl ProcSlot {
    /// The slot index as a `usize` for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a CPU is doing, for time accounting (Table 1's user/system/idle
/// split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Running application code.
    User,
    /// Running kernel code on behalf of a process or interrupt.
    Kernel,
    /// Spinning in the kernel idle loop.
    Idle,
}

/// The paper's high-level OS operations (Table 8). Every kernel
/// invocation is tagged with one of these for the functional
/// classification of Figure 9 and the operation mix of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// TLB fault that requires allocating a physical page (possibly with
    /// a page copy/clear or disk I/O).
    ExpensiveTlbFault,
    /// TLB fault needing neither memory allocation nor I/O, *excluding*
    /// the UTLB fast path.
    CheapTlbFault,
    /// The UTLB fast path: copying a page-table entry into the TLB.
    UtlbFault,
    /// System call that reads or writes the file system.
    IoSyscall,
    /// The `sginap` reschedule system call, issued by the user
    /// synchronization library after 20 failed spins.
    Sginap,
    /// Any other system call.
    OtherSyscall,
    /// Any interrupt (clock, disk, terminal, inter-CPU).
    Interrupt,
}

impl OpClass {
    /// All operation classes, in the paper's Table 8 order.
    pub const ALL: [OpClass; 7] = [
        OpClass::ExpensiveTlbFault,
        OpClass::CheapTlbFault,
        OpClass::UtlbFault,
        OpClass::IoSyscall,
        OpClass::Sginap,
        OpClass::OtherSyscall,
        OpClass::Interrupt,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::ExpensiveTlbFault => "expensive-tlb",
            OpClass::CheapTlbFault => "cheap-tlb",
            OpClass::UtlbFault => "utlb",
            OpClass::IoSyscall => "io-syscall",
            OpClass::Sginap => "sginap",
            OpClass::OtherSyscall => "other-syscall",
            OpClass::Interrupt => "interrupt",
        }
    }

    /// A stable small integer for escape encoding.
    pub fn code(self) -> u32 {
        match self {
            OpClass::ExpensiveTlbFault => 0,
            OpClass::CheapTlbFault => 1,
            OpClass::UtlbFault => 2,
            OpClass::IoSyscall => 3,
            OpClass::Sginap => 4,
            OpClass::OtherSyscall => 5,
            OpClass::Interrupt => 6,
        }
    }

    /// Inverse of [`OpClass::code`].
    pub fn from_code(code: u32) -> Option<Self> {
        OpClass::ALL.into_iter().find(|c| c.code() == code)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Attributed kernel activity contexts: while one of these is active on a
/// CPU, misses are charged to it. These drive the migration-miss
/// operation breakdown (Table 5) and the block-operation accounting
/// (Tables 6 and 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttrCtx {
    /// The seven routines that manage the run queue (save/restore
    /// context, enqueue/dequeue, pick, scheduler).
    RunQueueMgmt,
    /// Assembly-level initial/final exception handling (eframe
    /// save/restore, dispatch).
    LowLevelException,
    /// Recognition and setup of read/write system calls.
    ReadWriteSetup,
    /// The block copy routine.
    BlockCopy,
    /// The block clear routine.
    BlockClear,
    /// Traversal of the physical page descriptors (page-out scan).
    PfdatScan,
}

impl AttrCtx {
    /// All attribution contexts.
    pub const ALL: [AttrCtx; 6] = [
        AttrCtx::RunQueueMgmt,
        AttrCtx::LowLevelException,
        AttrCtx::ReadWriteSetup,
        AttrCtx::BlockCopy,
        AttrCtx::BlockClear,
        AttrCtx::PfdatScan,
    ];

    /// A stable small integer for escape encoding.
    pub fn code(self) -> u32 {
        match self {
            AttrCtx::RunQueueMgmt => 0,
            AttrCtx::LowLevelException => 1,
            AttrCtx::ReadWriteSetup => 2,
            AttrCtx::BlockCopy => 3,
            AttrCtx::BlockClear => 4,
            AttrCtx::PfdatScan => 5,
        }
    }

    /// Inverse of [`AttrCtx::code`].
    pub fn from_code(code: u32) -> Option<Self> {
        AttrCtx::ALL.into_iter().find(|c| c.code() == code)
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            AttrCtx::RunQueueMgmt => "runq-mgmt",
            AttrCtx::LowLevelException => "low-level-exc",
            AttrCtx::ReadWriteSetup => "rw-setup",
            AttrCtx::BlockCopy => "bcopy",
            AttrCtx::BlockClear => "bclear",
            AttrCtx::PfdatScan => "pfdat-scan",
        }
    }
}

impl fmt::Display for AttrCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Category of a block operation's size, per Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockSizeClass {
    /// A full 4 KB page.
    FullPage,
    /// A regular fraction of a page (1/2, 1/4, 1/8).
    RegularFragment,
    /// Anything else (strings, syscall parameters, heap structures).
    IrregularChunk,
}

impl BlockSizeClass {
    /// Classifies a byte count.
    pub fn of(bytes: u64) -> Self {
        const PAGE: u64 = 4096;
        if bytes == PAGE {
            BlockSizeClass::FullPage
        } else if bytes == PAGE / 2 || bytes == PAGE / 4 || bytes == PAGE / 8 {
            BlockSizeClass::RegularFragment
        } else {
            BlockSizeClass::IrregularChunk
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            BlockSizeClass::FullPage => "full-page",
            BlockSizeClass::RegularFragment => "regular-fragment",
            BlockSizeClass::IrregularChunk => "irregular-chunk",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opclass_codes_roundtrip() {
        for c in OpClass::ALL {
            assert_eq!(OpClass::from_code(c.code()), Some(c));
        }
        assert_eq!(OpClass::from_code(99), None);
    }

    #[test]
    fn attrctx_codes_roundtrip() {
        for c in AttrCtx::ALL {
            assert_eq!(AttrCtx::from_code(c.code()), Some(c));
        }
        assert_eq!(AttrCtx::from_code(42), None);
    }

    #[test]
    fn block_size_classes() {
        assert_eq!(BlockSizeClass::of(4096), BlockSizeClass::FullPage);
        assert_eq!(BlockSizeClass::of(2048), BlockSizeClass::RegularFragment);
        assert_eq!(BlockSizeClass::of(1024), BlockSizeClass::RegularFragment);
        assert_eq!(BlockSizeClass::of(512), BlockSizeClass::RegularFragment);
        assert_eq!(BlockSizeClass::of(300), BlockSizeClass::IrregularChunk);
        assert_eq!(BlockSizeClass::of(8192), BlockSizeClass::IrregularChunk);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> = OpClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), OpClass::ALL.len());
    }

    #[test]
    fn display_impls() {
        assert_eq!(Pid(3).to_string(), "pid3");
        assert_eq!(OpClass::Sginap.to_string(), "sginap");
        assert_eq!(AttrCtx::BlockCopy.to_string(), "bcopy");
    }
}
