//! OS-layer snapshot support.
//!
//! The machine crate provides the raw wire format
//! ([`SnapWriter`]/[`SnapReader`]); this module adds what the OS layer
//! needs on top: serializers for the kernel's enum vocabulary
//! ([`Chan`], [`KOp`], [`UOp`], ...) and the task-serialization plumbing.
//!
//! Tasks are trait objects, so snapshots record them as a *tag* (the
//! task's [`name()`](crate::user::UserTask::name)) followed by
//! type-specific state written by the task's
//! [`save`](crate::user::UserTask::save) hook. Restoring goes through a
//! [`TaskFactory`] that maps tags back to concrete types — the factory
//! lives with the workload crate so the dependency arrow keeps pointing
//! from workloads to the OS.
//!
//! Some task families share state through `Rc` (the Mp3d step barrier).
//! [`TaskSaver::shared_start`] and [`TaskRestorer::shared_rc`] implement
//! a first-reference-writes-contents registry so the restored tasks are
//! reconnected to a single object, exactly mirroring the original
//! topology.

use std::any::Any;
use std::rc::Rc;

pub use oscar_machine::snap::{SnapError, SnapReader, SnapWriter, SNAP_FORMAT_VERSION};

use crate::exec::{Chan, Disposition, KCall, KFrame, KOp, PageInit};
use crate::instrument::{OsEvent, NUM_OPCODES};
use crate::locks::{LockFamily, LockId};
use crate::proc::{ProcState, Pte};
use crate::types::{OpClass, Pid, ProcSlot};
use crate::user::{ExecImage, SysReq, UOp, UserTask};
use oscar_machine::addr::{CpuId, Ppn, Vpn};

/// Serialization context for task state: a writer plus the shared-`Rc`
/// registry. Created once per snapshot so shared objects referenced by
/// several tasks are written exactly once.
pub struct TaskSaver<'a> {
    w: &'a mut SnapWriter,
    shared: Vec<*const ()>,
}

impl<'a> TaskSaver<'a> {
    /// Wraps a writer for one snapshot's task section.
    pub fn new(w: &'a mut SnapWriter) -> Self {
        TaskSaver {
            w,
            shared: Vec::new(),
        }
    }

    /// The underlying writer, for non-task payloads interleaved with
    /// task state.
    pub fn writer(&mut self) -> &mut SnapWriter {
        self.w
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.w.u8(v);
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.w.u32(v);
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.w.u64(v);
    }

    /// Writes a `bool`.
    pub fn bool(&mut self, v: bool) {
        self.w.bool(v);
    }

    /// Writes a task as its tag followed by its type-specific state.
    ///
    /// # Panics
    ///
    /// Panics if the task does not implement
    /// [`save`](crate::user::UserTask::save) — a world running such a
    /// task cannot be snapshotted, and failing loudly beats corrupting
    /// the image.
    pub fn task(&mut self, t: &dyn UserTask) {
        self.w.str(t.name());
        assert!(
            t.save(self),
            "task {:?} does not support snapshots",
            t.name()
        );
    }

    /// Registers a shared object (by pointer identity) and writes its
    /// registry index. Returns `true` when this is the first reference,
    /// in which case the caller must write the object's contents next.
    pub fn shared_start(&mut self, ptr: *const ()) -> bool {
        match self.shared.iter().position(|&p| p == ptr) {
            Some(i) => {
                self.w.u32(i as u32);
                self.w.bool(false);
                false
            }
            None => {
                let i = self.shared.len();
                self.shared.push(ptr);
                self.w.u32(i as u32);
                self.w.bool(true);
                true
            }
        }
    }
}

/// Maps task tags back to concrete task types. Implemented by the
/// workload crate (it knows every task type); the OS layer stays
/// ignorant of concrete workloads.
pub trait TaskFactory {
    /// Restores a task from its tag, or `Ok(None)` for an unknown tag.
    fn restore(
        &self,
        tag: &str,
        r: &mut TaskRestorer<'_, '_>,
    ) -> Result<Option<Box<dyn UserTask>>, SnapError>;
}

/// Deserialization context for task state: a reader, the restored
/// shared-object registry, and the factory.
pub struct TaskRestorer<'a, 'b> {
    r: &'a mut SnapReader<'b>,
    shared: Vec<Rc<dyn Any>>,
    factory: &'a dyn TaskFactory,
}

impl<'a, 'b> TaskRestorer<'a, 'b> {
    /// Wraps a reader for one snapshot's task section.
    pub fn new(r: &'a mut SnapReader<'b>, factory: &'a dyn TaskFactory) -> Self {
        TaskRestorer {
            r,
            shared: Vec::new(),
            factory,
        }
    }

    /// The underlying reader.
    pub fn reader(&mut self) -> &mut SnapReader<'b> {
        self.r
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        self.r.u8()
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        self.r.u32()
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        self.r.u64()
    }

    /// Reads a `bool`.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        self.r.bool()
    }

    /// Reads a task written by [`TaskSaver::task`].
    pub fn task(&mut self) -> Result<Box<dyn UserTask>, SnapError> {
        let tag = self.r.str()?.to_string();
        let factory = self.factory;
        factory
            .restore(&tag, self)?
            .ok_or(SnapError::Corrupt("unknown task tag"))
    }

    /// Restores a shared object written via [`TaskSaver::shared_start`]:
    /// builds it with `build` on the first reference and returns the
    /// registered instance on every later one.
    pub fn shared_rc<T: Any>(
        &mut self,
        build: impl FnOnce(&mut Self) -> Result<T, SnapError>,
    ) -> Result<Rc<T>, SnapError> {
        let idx = self.r.u32()? as usize;
        let first = self.r.bool()?;
        if first {
            if idx != self.shared.len() {
                return Err(SnapError::Corrupt("shared registry index"));
            }
            let rc = Rc::new(build(self)?);
            self.shared.push(rc.clone() as Rc<dyn Any>);
            Ok(rc)
        } else {
            self.shared
                .get(idx)
                .cloned()
                .ok_or(SnapError::Corrupt("shared registry index"))?
                .downcast::<T>()
                .map_err(|_| SnapError::Corrupt("shared registry type"))
        }
    }
}

fn family_tag(f: LockFamily) -> u8 {
    LockFamily::ALL.iter().position(|&x| x == f).unwrap() as u8
}

fn family_from_tag(t: u8) -> Result<LockFamily, SnapError> {
    LockFamily::ALL
        .get(t as usize)
        .copied()
        .ok_or(SnapError::Corrupt("lock family tag"))
}

pub(crate) fn save_lock_id(w: &mut SnapWriter, id: LockId) {
    w.u8(family_tag(id.family));
    w.u32(id.instance);
}

pub(crate) fn load_lock_id(r: &mut SnapReader<'_>) -> Result<LockId, SnapError> {
    let family = family_from_tag(r.u8()?)?;
    Ok(LockId::new(family, r.u32()?))
}

pub(crate) fn save_chan(w: &mut SnapWriter, c: &Chan) {
    match *c {
        Chan::Buf(i) => {
            w.u8(0);
            w.usize(i);
        }
        Chan::PipeData(i) => {
            w.u8(1);
            w.usize(i);
        }
        Chan::PipeSpace(i) => {
            w.u8(2);
            w.usize(i);
        }
        Chan::Child(s) => {
            w.u8(3);
            w.u16(s.0);
        }
        Chan::Timer(p) => {
            w.u8(4);
            w.u32(p.0);
        }
        Chan::Sem(s) => {
            w.u8(5);
            w.u32(s);
        }
        Chan::InoWait(i) => {
            w.u8(6);
            w.u32(i);
        }
    }
}

pub(crate) fn load_chan(r: &mut SnapReader<'_>) -> Result<Chan, SnapError> {
    Ok(match r.u8()? {
        0 => Chan::Buf(r.usize()?),
        1 => Chan::PipeData(r.usize()?),
        2 => Chan::PipeSpace(r.usize()?),
        3 => Chan::Child(ProcSlot(r.u16()?)),
        4 => Chan::Timer(Pid(r.u32()?)),
        5 => Chan::Sem(r.u32()?),
        6 => Chan::InoWait(r.u32()?),
        _ => return Err(SnapError::Corrupt("chan tag")),
    })
}

pub(crate) fn save_disposition(w: &mut SnapWriter, d: &Disposition) {
    match d {
        Disposition::Requeue => w.u8(0),
        Disposition::Sleep(c) => {
            w.u8(1);
            save_chan(w, c);
        }
        Disposition::Exit => w.u8(2),
        Disposition::FromIdle => w.u8(3),
    }
}

pub(crate) fn load_disposition(r: &mut SnapReader<'_>) -> Result<Disposition, SnapError> {
    Ok(match r.u8()? {
        0 => Disposition::Requeue,
        1 => Disposition::Sleep(load_chan(r)?),
        2 => Disposition::Exit,
        3 => Disposition::FromIdle,
        _ => return Err(SnapError::Corrupt("disposition tag")),
    })
}

fn save_page_init(w: &mut SnapWriter, p: &PageInit) {
    match *p {
        PageInit::Zero => w.u8(0),
        PageInit::CopyFrom(ppn) => {
            w.u8(1);
            w.u32(ppn);
        }
        PageInit::None => w.u8(2),
    }
}

fn load_page_init(r: &mut SnapReader<'_>) -> Result<PageInit, SnapError> {
    Ok(match r.u8()? {
        0 => PageInit::Zero,
        1 => PageInit::CopyFrom(r.u32()?),
        2 => PageInit::None,
        _ => return Err(SnapError::Corrupt("page init tag")),
    })
}

pub(crate) fn save_image(w: &mut SnapWriter, img: &ExecImage) {
    w.u32(img.inode);
    w.u32(img.text_bytes);
    w.u32(img.data_bytes);
}

pub(crate) fn load_image(r: &mut SnapReader<'_>) -> Result<ExecImage, SnapError> {
    Ok(ExecImage {
        inode: r.u32()?,
        text_bytes: r.u32()?,
        data_bytes: r.u32()?,
    })
}

fn save_kcall(w: &mut SnapWriter, c: &KCall) {
    match *c {
        KCall::Swtch(d) => {
            w.u8(0);
            save_disposition(w, &d);
        }
        KCall::SwtchCommit => w.u8(1),
        KCall::TlbRefill { vpn, write } => {
            w.u8(2);
            w.u32(vpn);
            w.bool(write);
        }
        KCall::TlbInsert { vpn, ppn } => {
            w.u8(3);
            w.u32(vpn);
            w.u32(ppn);
        }
        KCall::AllocPage { vpn, init } => {
            w.u8(4);
            w.u32(vpn);
            save_page_init(w, &init);
        }
        KCall::SyncWriteStart { buf } => {
            w.u8(5);
            w.usize(buf);
        }
        KCall::DiskEnqueue { buf, write, seq } => {
            w.u8(6);
            w.usize(buf);
            w.bool(write);
            w.bool(seq);
        }
        KCall::Sleep { chan } => {
            w.u8(7);
            save_chan(w, &chan);
        }
        KCall::ForkChild => w.u8(8),
        KCall::ExecReplace { image } => {
            w.u8(9);
            save_image(w, &image);
        }
        KCall::ExecLoad { image, page } => {
            w.u8(10);
            save_image(w, &image);
            w.u32(page);
        }
        KCall::ExitFinish => w.u8(11),
        KCall::WaitCheck => w.u8(12),
        KCall::SemOpApply { sem, delta } => {
            w.u8(13);
            w.u32(sem);
            w.i64(delta as i64);
        }
        KCall::PipeXfer { pipe, bytes, write } => {
            w.u8(14);
            w.usize(pipe);
            w.u32(bytes);
            w.bool(write);
        }
        KCall::NapArm { ticks } => {
            w.u8(15);
            w.u32(ticks);
        }
        KCall::ClockTick => w.u8(16),
        KCall::SchedCpuScan => w.u8(17),
        KCall::DiskIntrDone => w.u8(18),
        KCall::ShmMap { seg, pages } => {
            w.u8(19);
            w.u32(seg);
            w.u32(pages);
        }
    }
}

fn load_kcall(r: &mut SnapReader<'_>) -> Result<KCall, SnapError> {
    Ok(match r.u8()? {
        0 => KCall::Swtch(load_disposition(r)?),
        1 => KCall::SwtchCommit,
        2 => KCall::TlbRefill {
            vpn: r.u32()?,
            write: r.bool()?,
        },
        3 => KCall::TlbInsert {
            vpn: r.u32()?,
            ppn: r.u32()?,
        },
        4 => KCall::AllocPage {
            vpn: r.u32()?,
            init: load_page_init(r)?,
        },
        5 => KCall::SyncWriteStart { buf: r.usize()? },
        6 => KCall::DiskEnqueue {
            buf: r.usize()?,
            write: r.bool()?,
            seq: r.bool()?,
        },
        7 => KCall::Sleep {
            chan: load_chan(r)?,
        },
        8 => KCall::ForkChild,
        9 => KCall::ExecReplace {
            image: load_image(r)?,
        },
        10 => KCall::ExecLoad {
            image: load_image(r)?,
            page: r.u32()?,
        },
        11 => KCall::ExitFinish,
        12 => KCall::WaitCheck,
        13 => KCall::SemOpApply {
            sem: r.u32()?,
            delta: r.i64()? as i32,
        },
        14 => KCall::PipeXfer {
            pipe: r.usize()?,
            bytes: r.u32()?,
            write: r.bool()?,
        },
        15 => KCall::NapArm { ticks: r.u32()? },
        16 => KCall::ClockTick,
        17 => KCall::SchedCpuScan,
        18 => KCall::DiskIntrDone,
        19 => KCall::ShmMap {
            seg: r.u32()?,
            pages: r.u32()?,
        },
        _ => return Err(SnapError::Corrupt("kcall tag")),
    })
}

pub(crate) fn save_event(w: &mut SnapWriter, ev: &OsEvent) {
    let seq = ev.encode();
    w.u32(ev.opcode());
    for addr in &seq[1..] {
        w.u32(OsEvent::decode_payload(*addr));
    }
}

pub(crate) fn load_event(r: &mut SnapReader<'_>) -> Result<OsEvent, SnapError> {
    let opcode = r.u32()?;
    if opcode >= NUM_OPCODES {
        return Err(SnapError::Corrupt("os event opcode"));
    }
    let n = OsEvent::payload_count(opcode);
    let mut payloads = Vec::with_capacity(n);
    for _ in 0..n {
        payloads.push(r.u32()?);
    }
    OsEvent::decode(opcode, &payloads).ok_or(SnapError::Corrupt("os event payload"))
}

pub(crate) fn save_kop(w: &mut SnapWriter, op: &KOp) {
    match op {
        KOp::IFetch { cur, end } => {
            w.u8(0);
            w.u64(*cur);
            w.u64(*end);
        }
        KOp::Data { addr, write } => {
            w.u8(1);
            w.u64(*addr);
            w.bool(*write);
        }
        KOp::DSweep {
            cur,
            end,
            stride,
            write,
        } => {
            w.u8(2);
            w.u64(*cur);
            w.u64(*end);
            w.u32(*stride);
            w.bool(*write);
        }
        KOp::Compute { cycles } => {
            w.u8(3);
            w.u64(*cycles);
        }
        KOp::Escape(ev) => {
            w.u8(4);
            save_event(w, ev);
        }
        KOp::Lock(id) => {
            w.u8(5);
            save_lock_id(w, *id);
        }
        KOp::Unlock(id) => {
            w.u8(6);
            save_lock_id(w, *id);
        }
        KOp::Call(c) => {
            w.u8(7);
            save_kcall(w, c);
        }
    }
}

pub(crate) fn load_kop(r: &mut SnapReader<'_>) -> Result<KOp, SnapError> {
    Ok(match r.u8()? {
        0 => KOp::IFetch {
            cur: r.u64()?,
            end: r.u64()?,
        },
        1 => KOp::Data {
            addr: r.u64()?,
            write: r.bool()?,
        },
        2 => KOp::DSweep {
            cur: r.u64()?,
            end: r.u64()?,
            stride: r.u32()?,
            write: r.bool()?,
        },
        3 => KOp::Compute { cycles: r.u64()? },
        4 => KOp::Escape(load_event(r)?),
        5 => KOp::Lock(load_lock_id(r)?),
        6 => KOp::Unlock(load_lock_id(r)?),
        7 => KOp::Call(load_kcall(r)?),
        _ => return Err(SnapError::Corrupt("kop tag")),
    })
}

pub(crate) fn save_kframe(w: &mut SnapWriter, f: &KFrame) {
    w.u32(f.class.code());
    w.usize(f.ops.len());
    for op in &f.ops {
        save_kop(w, op);
    }
}

pub(crate) fn load_kframe(r: &mut SnapReader<'_>) -> Result<KFrame, SnapError> {
    let class = OpClass::from_code(r.u32()?).ok_or(SnapError::Corrupt("op class"))?;
    let n = r.usize()?;
    let mut ops = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        ops.push(load_kop(r)?);
    }
    Ok(KFrame::new(class, ops))
}

pub(crate) fn save_sysreq(s: &mut TaskSaver<'_>, req: &SysReq) {
    match req {
        SysReq::Read { inode, bytes } => {
            s.u8(0);
            s.u32(*inode);
            s.u32(*bytes);
        }
        SysReq::Write { inode, bytes } => {
            s.u8(1);
            s.u32(*inode);
            s.u32(*bytes);
        }
        SysReq::ReadAt {
            inode,
            offset,
            bytes,
        } => {
            s.u8(2);
            s.u32(*inode);
            s.u64(*offset);
            s.u32(*bytes);
        }
        SysReq::SyncWrite { inode, bytes } => {
            s.u8(3);
            s.u32(*inode);
            s.u32(*bytes);
        }
        SysReq::WriteAt {
            inode,
            offset,
            bytes,
        } => {
            s.u8(4);
            s.u32(*inode);
            s.u64(*offset);
            s.u32(*bytes);
        }
        SysReq::Open { inode, components } => {
            s.u8(5);
            s.u32(*inode);
            s.u32(*components);
        }
        SysReq::Close { inode } => {
            s.u8(6);
            s.u32(*inode);
        }
        SysReq::Sginap => s.u8(7),
        SysReq::Fork { child } => {
            s.u8(8);
            s.task(child.as_ref());
        }
        SysReq::Exec { image } => {
            s.u8(9);
            save_image(s.writer(), image);
        }
        SysReq::Exit => s.u8(10),
        SysReq::Wait => s.u8(11),
        SysReq::Brk { pages } => {
            s.u8(12);
            s.u32(*pages);
        }
        SysReq::ShmAttach { seg, pages } => {
            s.u8(13);
            s.u32(*seg);
            s.u32(*pages);
        }
        SysReq::SemOp { sem, delta } => {
            s.u8(14);
            s.u32(*sem);
            s.writer().i64(*delta as i64);
        }
        SysReq::PipeRead { pipe, bytes } => {
            s.u8(15);
            s.u32(*pipe);
            s.u32(*bytes);
        }
        SysReq::PipeWrite { pipe, bytes } => {
            s.u8(16);
            s.u32(*pipe);
            s.u32(*bytes);
        }
        SysReq::TtyWrite { stream, bytes } => {
            s.u8(17);
            s.u32(*stream);
            s.u32(*bytes);
        }
        SysReq::Nap { ticks } => {
            s.u8(18);
            s.u32(*ticks);
        }
        SysReq::SockRecv { bytes } => {
            s.u8(19);
            s.u32(*bytes);
        }
    }
}

pub(crate) fn load_sysreq(r: &mut TaskRestorer<'_, '_>) -> Result<SysReq, SnapError> {
    Ok(match r.u8()? {
        0 => SysReq::Read {
            inode: r.u32()?,
            bytes: r.u32()?,
        },
        1 => SysReq::Write {
            inode: r.u32()?,
            bytes: r.u32()?,
        },
        2 => SysReq::ReadAt {
            inode: r.u32()?,
            offset: r.u64()?,
            bytes: r.u32()?,
        },
        3 => SysReq::SyncWrite {
            inode: r.u32()?,
            bytes: r.u32()?,
        },
        4 => SysReq::WriteAt {
            inode: r.u32()?,
            offset: r.u64()?,
            bytes: r.u32()?,
        },
        5 => SysReq::Open {
            inode: r.u32()?,
            components: r.u32()?,
        },
        6 => SysReq::Close { inode: r.u32()? },
        7 => SysReq::Sginap,
        8 => SysReq::Fork { child: r.task()? },
        9 => SysReq::Exec {
            image: load_image(r.reader())?,
        },
        10 => SysReq::Exit,
        11 => SysReq::Wait,
        12 => SysReq::Brk { pages: r.u32()? },
        13 => SysReq::ShmAttach {
            seg: r.u32()?,
            pages: r.u32()?,
        },
        14 => SysReq::SemOp {
            sem: r.u32()?,
            delta: r.reader().i64()? as i32,
        },
        15 => SysReq::PipeRead {
            pipe: r.u32()?,
            bytes: r.u32()?,
        },
        16 => SysReq::PipeWrite {
            pipe: r.u32()?,
            bytes: r.u32()?,
        },
        17 => SysReq::TtyWrite {
            stream: r.u32()?,
            bytes: r.u32()?,
        },
        18 => SysReq::Nap { ticks: r.u32()? },
        19 => SysReq::SockRecv { bytes: r.u32()? },
        _ => return Err(SnapError::Corrupt("sysreq tag")),
    })
}

pub(crate) fn save_uop(s: &mut TaskSaver<'_>, op: &UOp) {
    match op {
        UOp::Run { cur, end } => {
            s.u8(0);
            s.u64(*cur);
            s.u64(*end);
        }
        UOp::RunLoop {
            base,
            len,
            iters,
            off,
        } => {
            s.u8(1);
            s.u64(*base);
            s.u32(*len);
            s.u32(*iters);
            s.u32(*off);
        }
        UOp::Touch { addr, write } => {
            s.u8(2);
            s.u64(*addr);
            s.bool(*write);
        }
        UOp::Sweep {
            cur,
            end,
            stride,
            write,
        } => {
            s.u8(3);
            s.u64(*cur);
            s.u64(*end);
            s.u32(*stride);
            s.bool(*write);
        }
        UOp::Compute { cycles } => {
            s.u8(4);
            s.u64(*cycles);
        }
        UOp::Walk {
            base,
            span,
            left,
            state,
            write_ratio,
        } => {
            s.u8(5);
            s.u64(*base);
            s.u64(*span);
            s.u32(*left);
            s.u64(*state);
            s.u8(*write_ratio);
        }
        UOp::Syscall(req) => {
            s.u8(6);
            save_sysreq(s, req);
        }
        UOp::LockAcq { lock, spins } => {
            s.u8(7);
            s.u32(*lock);
            s.u32(*spins);
        }
        UOp::LockRel { lock } => {
            s.u8(8);
            s.u32(*lock);
        }
    }
}

pub(crate) fn load_uop(r: &mut TaskRestorer<'_, '_>) -> Result<UOp, SnapError> {
    Ok(match r.u8()? {
        0 => UOp::Run {
            cur: r.u64()?,
            end: r.u64()?,
        },
        1 => UOp::RunLoop {
            base: r.u64()?,
            len: r.u32()?,
            iters: r.u32()?,
            off: r.u32()?,
        },
        2 => UOp::Touch {
            addr: r.u64()?,
            write: r.bool()?,
        },
        3 => UOp::Sweep {
            cur: r.u64()?,
            end: r.u64()?,
            stride: r.u32()?,
            write: r.bool()?,
        },
        4 => UOp::Compute { cycles: r.u64()? },
        5 => UOp::Walk {
            base: r.u64()?,
            span: r.u64()?,
            left: r.u32()?,
            state: r.u64()?,
            write_ratio: r.u8()?,
        },
        6 => UOp::Syscall(load_sysreq(r)?),
        7 => UOp::LockAcq {
            lock: r.u32()?,
            spins: r.u32()?,
        },
        8 => UOp::LockRel { lock: r.u32()? },
        _ => return Err(SnapError::Corrupt("uop tag")),
    })
}

pub(crate) fn save_proc_state(w: &mut SnapWriter, st: &ProcState) {
    match st {
        ProcState::Ready => w.u8(0),
        ProcState::Running(cpu) => {
            w.u8(1);
            w.u8(cpu.0);
        }
        ProcState::Sleeping(chan) => {
            w.u8(2);
            save_chan(w, chan);
        }
        ProcState::Zombie => w.u8(3),
    }
}

pub(crate) fn load_proc_state(r: &mut SnapReader<'_>) -> Result<ProcState, SnapError> {
    Ok(match r.u8()? {
        0 => ProcState::Ready,
        1 => ProcState::Running(CpuId(r.u8()?)),
        2 => ProcState::Sleeping(load_chan(r)?),
        3 => ProcState::Zombie,
        _ => return Err(SnapError::Corrupt("proc state tag")),
    })
}

pub(crate) fn save_pte(w: &mut SnapWriter, vpn: Vpn, pte: &Pte) {
    w.u32(vpn.0);
    w.u32(pte.ppn.0);
    w.bool(pte.cow);
}

pub(crate) fn load_pte(r: &mut SnapReader<'_>) -> Result<(Vpn, Pte), SnapError> {
    Ok((
        Vpn(r.u32()?),
        Pte {
            ppn: Ppn(r.u32()?),
            cow: r.bool()?,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::OpClass;

    #[test]
    fn enum_serializers_roundtrip() {
        let mut w = SnapWriter::new();
        save_chan(&mut w, &Chan::Child(ProcSlot(7)));
        save_disposition(&mut w, &Disposition::Sleep(Chan::Sem(3)));
        save_kop(&mut w, &KOp::Call(KCall::SemOpApply { sem: 2, delta: -1 }));
        save_kop(&mut w, &KOp::Escape(OsEvent::PidChange { pid: 42 }));
        save_kframe(
            &mut w,
            &KFrame::new(OpClass::IoSyscall, vec![KOp::Compute { cycles: 9 }]),
        );
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(load_chan(&mut r).unwrap(), Chan::Child(ProcSlot(7)));
        assert_eq!(
            load_disposition(&mut r).unwrap(),
            Disposition::Sleep(Chan::Sem(3))
        );
        assert!(matches!(
            load_kop(&mut r).unwrap(),
            KOp::Call(KCall::SemOpApply { sem: 2, delta: -1 })
        ));
        assert!(matches!(
            load_kop(&mut r).unwrap(),
            KOp::Escape(OsEvent::PidChange { pid: 42 })
        ));
        let f = load_kframe(&mut r).unwrap();
        assert_eq!(f.class, OpClass::IoSyscall);
        assert_eq!(f.ops.len(), 1);
        r.expect_end().unwrap();
    }

    #[test]
    fn corrupt_tags_error() {
        let mut w = SnapWriter::new();
        w.u8(99);
        let bytes = w.into_bytes();
        assert!(load_chan(&mut SnapReader::new(&bytes)).is_err());
        assert!(load_kop(&mut SnapReader::new(&bytes)).is_err());
    }
}
