//! The buffer cache and the disk model.
//!
//! A classic System V buffer cache: a fixed array of buffer headers (the
//! `Buffer` structure of Table 3) caching 4 KB file blocks, with an LRU
//! free list protected by `Bfreelock`, plus a single disk that services
//! one request at a time and raises a completion interrupt.

use std::collections::{HashMap, VecDeque};

/// Key identifying a cached file block: `(inode, file block number)`.
pub type BlockKey = (u32, u32);

#[derive(Debug, Clone, Copy, Default)]
struct Buffer {
    key: Option<BlockKey>,
    dirty: bool,
    /// I/O in progress.
    busy: bool,
    lru: u64,
}

/// Outcome of a buffer-cache lookup-or-allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GetBlk {
    /// The block was cached; the buffer index is ready to use.
    Hit(usize),
    /// The block was not cached; the returned victim buffer has been
    /// re-keyed and marked busy, and the caller must schedule a read.
    /// `flushed_dirty` reports that the victim's previous contents were
    /// dirty and an asynchronous write-back was needed.
    Miss {
        /// The buffer now assigned to the block.
        buf: usize,
        /// The victim held dirty data that must be written out.
        flushed_dirty: bool,
    },
}

/// The buffer cache.
#[derive(Debug)]
pub struct BufferCache {
    bufs: Vec<Buffer>,
    map: HashMap<BlockKey, usize>,
    tick: u64,
}

impl BufferCache {
    /// Creates a cache of `nbuf` buffers.
    pub fn new(nbuf: usize) -> Self {
        BufferCache {
            bufs: vec![Buffer::default(); nbuf],
            map: HashMap::new(),
            tick: 0,
        }
    }

    /// Number of buffers.
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    /// Whether the cache has no buffers (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Whether `key` is currently cached (no state change).
    pub fn probe(&self, key: BlockKey) -> bool {
        self.map.contains_key(&key)
    }

    /// Serializes the buffers and LRU clock; the key map is rebuilt on
    /// load.
    pub(crate) fn save(&self, w: &mut crate::snap::SnapWriter) {
        w.usize(self.bufs.len());
        for b in &self.bufs {
            match b.key {
                None => w.bool(false),
                Some((ino, blk)) => {
                    w.bool(true);
                    w.u32(ino);
                    w.u32(blk);
                }
            }
            w.bool(b.dirty);
            w.bool(b.busy);
            w.u64(b.lru);
        }
        w.u64(self.tick);
    }

    /// Restores state written by [`BufferCache::save`] into a cache of
    /// the same capacity.
    pub(crate) fn load(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        let n = r.usize()?;
        if n != self.bufs.len() {
            return Err(crate::snap::SnapError::Corrupt("buffer cache size"));
        }
        self.map.clear();
        for i in 0..n {
            let key = if r.bool()? {
                Some((r.u32()?, r.u32()?))
            } else {
                None
            };
            let b = Buffer {
                key,
                dirty: r.bool()?,
                busy: r.bool()?,
                lru: r.u64()?,
            };
            if let Some(k) = key {
                self.map.insert(k, i);
            }
            self.bufs[i] = b;
        }
        self.tick = r.u64()?;
        Ok(())
    }

    /// Looks up `key`, allocating the LRU non-busy buffer on a miss.
    pub fn getblk(&mut self, key: BlockKey) -> GetBlk {
        self.tick += 1;
        if let Some(&i) = self.map.get(&key) {
            self.bufs[i].lru = self.tick;
            return GetBlk::Hit(i);
        }
        // Victim: least recently used non-busy buffer.
        let victim = self
            .bufs
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.busy)
            .min_by_key(|(_, b)| b.lru)
            .map(|(i, _)| i)
            .expect("all buffers busy: buffer cache too small for workload");
        let flushed_dirty = self.bufs[victim].dirty;
        if let Some(old) = self.bufs[victim].key.take() {
            self.map.remove(&old);
        }
        self.bufs[victim] = Buffer {
            key: Some(key),
            dirty: false,
            busy: true,
            lru: self.tick,
        };
        self.map.insert(key, victim);
        GetBlk::Miss {
            buf: victim,
            flushed_dirty,
        }
    }

    /// Marks buffer `i`'s I/O complete.
    pub fn io_done(&mut self, i: usize) {
        self.bufs[i].busy = false;
    }

    /// Marks buffer `i` busy (I/O started outside `getblk`, e.g. a
    /// synchronous write).
    pub fn set_busy(&mut self, i: usize) {
        self.bufs[i].busy = true;
    }

    /// Marks buffer `i` dirty (delayed write).
    pub fn mark_dirty(&mut self, i: usize) {
        self.bufs[i].dirty = true;
    }

    /// Marks buffer `i` clean (written out).
    pub fn mark_clean(&mut self, i: usize) {
        self.bufs[i].dirty = false;
    }

    /// Whether buffer `i` has I/O in progress.
    pub fn is_busy(&self, i: usize) -> bool {
        self.bufs[i].busy
    }

    /// Whether buffer `i` is dirty.
    pub fn is_dirty(&self, i: usize) -> bool {
        self.bufs[i].dirty
    }

    /// Number of dirty buffers (reporting).
    pub fn dirty_count(&self) -> usize {
        self.bufs.iter().filter(|b| b.dirty).count()
    }
}

/// A disk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskReq {
    /// Buffer to fill or flush.
    pub buf: usize,
    /// Write (true) or read (false).
    pub write: bool,
    /// Completion time in cycles.
    pub done_at: u64,
}

/// A single disk servicing requests in order.
#[derive(Debug)]
pub struct Disk {
    queue: VecDeque<DiskReq>,
    busy_until: u64,
    latency: u64,
    /// Service time for sequential (no-seek) transfers.
    seq_latency: u64,
    /// Simple deterministic jitter state.
    jitter: u64,
    jitter_state: u64,
}

impl Disk {
    /// Creates a disk with the given nominal latency and jitter span.
    pub fn new(latency: u64, jitter: u64) -> Self {
        Disk {
            queue: VecDeque::new(),
            busy_until: 0,
            latency,
            seq_latency: (latency / 7).max(1),
            jitter,
            jitter_state: 0x243f_6a88_85a3_08d3,
        }
    }

    /// Serializes the dynamic disk state (queue, busy horizon, jitter
    /// PRNG). Latencies come from the configuration and are not
    /// written.
    pub(crate) fn save(&self, w: &mut crate::snap::SnapWriter) {
        w.usize(self.queue.len());
        for req in &self.queue {
            w.usize(req.buf);
            w.bool(req.write);
            w.u64(req.done_at);
        }
        w.u64(self.busy_until);
        w.u64(self.jitter_state);
    }

    /// Restores state written by [`Disk::save`] into a disk constructed
    /// with the same latencies.
    pub(crate) fn load(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        let n = r.usize()?;
        self.queue.clear();
        for _ in 0..n {
            self.queue.push_back(DiskReq {
                buf: r.usize()?,
                write: r.bool()?,
                done_at: r.u64()?,
            });
        }
        self.busy_until = r.u64()?;
        self.jitter_state = r.u64()?;
        Ok(())
    }

    fn next_jitter(&mut self) -> u64 {
        // xorshift: deterministic, seed-independent of workloads.
        let mut x = self.jitter_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter_state = x;
        if self.jitter == 0 {
            0
        } else {
            x % self.jitter
        }
    }

    /// Submits a request at `now`; returns its completion time.
    /// `sequential` transfers (consecutive blocks of the same file)
    /// skip the seek and are much faster.
    pub fn submit(&mut self, now: u64, buf: usize, write: bool, sequential: bool) -> u64 {
        let start = now.max(self.busy_until);
        let service = if sequential {
            self.seq_latency
        } else {
            self.latency + self.next_jitter()
        };
        let done_at = start + service;
        self.busy_until = done_at;
        self.queue.push_back(DiskReq {
            buf,
            write,
            done_at,
        });
        done_at
    }

    /// The completion time of the earliest outstanding request, if any.
    pub fn next_completion(&self) -> Option<u64> {
        self.queue.front().map(|r| r.done_at)
    }

    /// Pops the head request if it has completed by `now`.
    pub fn pop_completed(&mut self, now: u64) -> Option<DiskReq> {
        if self.queue.front().is_some_and(|r| r.done_at <= now) {
            self.queue.pop_front()
        } else {
            None
        }
    }

    /// Outstanding requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether a request for buffer `buf` is outstanding.
    pub fn has_request(&self, buf: usize) -> bool {
        self.queue.iter().any(|r| r.buf == buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn getblk_hit_after_miss() {
        let mut bc = BufferCache::new(4);
        let key = (7, 3);
        match bc.getblk(key) {
            GetBlk::Miss { buf, flushed_dirty } => {
                assert!(!flushed_dirty);
                bc.io_done(buf);
            }
            GetBlk::Hit(_) => panic!("cold cache cannot hit"),
        }
        assert!(matches!(bc.getblk(key), GetBlk::Hit(_)));
        assert!(bc.probe(key));
    }

    #[test]
    fn lru_victim_selection() {
        let mut bc = BufferCache::new(2);
        let GetBlk::Miss { buf: b0, .. } = bc.getblk((1, 0)) else {
            panic!()
        };
        bc.io_done(b0);
        let GetBlk::Miss { buf: b1, .. } = bc.getblk((1, 1)) else {
            panic!()
        };
        bc.io_done(b1);
        // Touch (1,0) so (1,1) is LRU.
        assert!(matches!(bc.getblk((1, 0)), GetBlk::Hit(_)));
        let GetBlk::Miss { buf, .. } = bc.getblk((1, 2)) else {
            panic!()
        };
        assert_eq!(buf, b1, "LRU buffer evicted");
        assert!(!bc.probe((1, 1)));
        assert!(bc.probe((1, 0)));
    }

    #[test]
    fn dirty_victim_reports_flush() {
        let mut bc = BufferCache::new(1);
        let GetBlk::Miss { buf, .. } = bc.getblk((1, 0)) else {
            panic!()
        };
        bc.io_done(buf);
        bc.mark_dirty(buf);
        let GetBlk::Miss { flushed_dirty, .. } = bc.getblk((1, 1)) else {
            panic!()
        };
        assert!(flushed_dirty);
    }

    #[test]
    fn busy_buffers_are_not_victims() {
        let mut bc = BufferCache::new(2);
        let GetBlk::Miss { buf: b0, .. } = bc.getblk((1, 0)) else {
            panic!()
        };
        // b0 still busy; next miss must pick the other buffer.
        let GetBlk::Miss { buf: b1, .. } = bc.getblk((1, 1)) else {
            panic!()
        };
        assert_ne!(b0, b1);
    }

    #[test]
    fn disk_serializes_requests() {
        let mut d = Disk::new(1000, 0);
        let t1 = d.submit(0, 0, false, false);
        let t2 = d.submit(0, 1, false, false);
        assert_eq!(t1, 1000);
        assert_eq!(t2, 2000);
        assert_eq!(d.next_completion(), Some(1000));
        assert!(d.pop_completed(500).is_none());
        let r = d.pop_completed(1500).unwrap();
        assert_eq!(r.buf, 0);
        assert_eq!(d.queue_len(), 1);
    }

    #[test]
    fn disk_jitter_is_bounded() {
        let mut d = Disk::new(1000, 100);
        let mut prev_end = 0;
        for i in 0..50 {
            let t = d.submit(prev_end, i, false, false);
            let service = t - prev_end;
            assert!((1000..1100).contains(&service), "service = {service}");
            prev_end = t;
        }
    }
}
