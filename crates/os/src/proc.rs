//! Processes and the process table.

use std::collections::HashMap;

use oscar_machine::addr::{CpuId, Ppn, Vpn};
use oscar_machine::fasthash::FastMap;
use oscar_rng::{SeedableRng, SmallRng};

use crate::exec::{Chan, KFrame};
use crate::types::{Pid, ProcSlot};
use crate::user::{ExecImage, UOp, UserTask};

/// Scheduling state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// On the run queue.
    Ready,
    /// Executing on a CPU.
    Running(CpuId),
    /// Asleep on a channel.
    Sleeping(Chan),
    /// Exited, awaiting `wait` by the parent.
    Zombie,
}

/// A page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Backing frame.
    pub ppn: Ppn,
    /// Copy-on-write: the frame is shared with the fork partner and must
    /// be copied on the first write.
    pub cow: bool,
}

/// One process.
pub struct Process {
    /// Process id (never reused).
    pub pid: Pid,
    /// Process-table slot (reused after exit).
    pub slot: ProcSlot,
    /// Parent slot, if any.
    pub parent: Option<ProcSlot>,
    /// Scheduling state.
    pub state: ProcState,
    /// CPU this process last ran on (drives migration accounting and
    /// affinity scheduling).
    pub last_cpu: Option<CpuId>,
    /// Hard CPU pin (the paper's network daemons run on CPU 1 only).
    pub pinned_cpu: Option<CpuId>,
    /// The user program.
    pub task: Box<dyn UserTask>,
    /// Pending kernel activation frames (syscalls/faults in progress).
    pub kstack: Vec<KFrame>,
    /// The user operation currently being executed, if any.
    pub cur_uop: Option<UOp>,
    /// Software page table. Keyed with the deterministic fast hasher:
    /// the copy-on-write check in `translate` probes this map on every
    /// user write.
    pub page_table: FastMap<Vpn, Pte>,
    /// Number of entries in `page_table` with the `cow` bit set. Lets
    /// the per-write COW check in `translate` skip the map probe
    /// entirely for processes with no COW pages (everything that never
    /// forked, or has resolved all its COW faults). Maintained exactly
    /// by the fork/fault/unmap paths; `debug_assert_cow_count` checks
    /// it against the table.
    pub cow_pages: u32,
    /// Per-file sequential positions (inode → byte offset).
    pub files: HashMap<u32, u64>,
    /// Clock ticks left in the quantum.
    pub quantum: u32,
    /// Child task parked by a `fork` in progress.
    pub pending_child: Option<Box<dyn UserTask>>,
    /// The image this process is executing, if it has `exec`ed.
    pub image: Option<ExecImage>,
    /// Per-process deterministic randomness.
    pub rng: SmallRng,
    /// Number of children that have exited but not been reaped.
    pub zombie_children: u32,
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Process")
            .field("pid", &self.pid)
            .field("slot", &self.slot)
            .field("state", &self.state)
            .field("task", &self.task.name())
            .field("kstack_depth", &self.kstack.len())
            .finish_non_exhaustive()
    }
}

impl Process {
    /// Whether the process is currently inside the kernel.
    pub fn in_kernel(&self) -> bool {
        !self.kstack.is_empty()
    }

    /// Debug-checks that `cow_pages` matches the page table.
    pub fn debug_assert_cow_count(&self) {
        debug_assert_eq!(
            self.cow_pages as usize,
            self.page_table.values().filter(|p| p.cow).count(),
            "cow_pages counter out of sync for {:?}",
            self.pid
        );
    }

    /// Serializes the process, in field-declaration order. Maps are
    /// written with sorted keys so the bytes are deterministic.
    pub(crate) fn save(&self, s: &mut crate::snap::TaskSaver<'_>) {
        fn opt_cpu(w: &mut crate::snap::SnapWriter, c: Option<CpuId>) {
            match c {
                None => w.bool(false),
                Some(c) => {
                    w.bool(true);
                    w.u8(c.0);
                }
            }
        }
        let w = s.writer();
        w.u32(self.pid.0);
        w.u16(self.slot.0);
        match self.parent {
            None => w.bool(false),
            Some(p) => {
                w.bool(true);
                w.u16(p.0);
            }
        }
        crate::snap::save_proc_state(w, &self.state);
        opt_cpu(w, self.last_cpu);
        opt_cpu(w, self.pinned_cpu);
        s.task(self.task.as_ref());
        let w = s.writer();
        w.usize(self.kstack.len());
        for f in &self.kstack {
            crate::snap::save_kframe(w, f);
        }
        match &self.cur_uop {
            None => s.bool(false),
            Some(op) => {
                s.bool(true);
                crate::snap::save_uop(s, op);
            }
        }
        let w = s.writer();
        let mut vpns: Vec<Vpn> = self.page_table.keys().copied().collect();
        vpns.sort_unstable_by_key(|v| v.0);
        w.usize(vpns.len());
        for vpn in vpns {
            crate::snap::save_pte(w, vpn, &self.page_table[&vpn]);
        }
        w.u32(self.cow_pages);
        let mut inodes: Vec<u32> = self.files.keys().copied().collect();
        inodes.sort_unstable();
        w.usize(inodes.len());
        for ino in inodes {
            w.u32(ino);
            w.u64(self.files[&ino]);
        }
        w.u32(self.quantum);
        match &self.pending_child {
            None => s.bool(false),
            Some(child) => {
                s.bool(true);
                s.task(child.as_ref());
            }
        }
        let w = s.writer();
        match &self.image {
            None => w.bool(false),
            Some(img) => {
                w.bool(true);
                crate::snap::save_image(w, img);
            }
        }
        w.u64_slice(&self.rng.state());
        w.u32(self.zombie_children);
    }

    /// Restores a process written by [`Process::save`].
    pub(crate) fn load(
        r: &mut crate::snap::TaskRestorer<'_, '_>,
    ) -> Result<Process, crate::snap::SnapError> {
        use crate::snap::{SnapError, SnapReader};
        fn opt_cpu(r: &mut SnapReader<'_>) -> Result<Option<CpuId>, SnapError> {
            Ok(if r.bool()? {
                Some(CpuId(r.u8()?))
            } else {
                None
            })
        }
        let rd = r.reader();
        let pid = Pid(rd.u32()?);
        let slot = ProcSlot(rd.u16()?);
        let parent = if rd.bool()? {
            Some(ProcSlot(rd.u16()?))
        } else {
            None
        };
        let state = crate::snap::load_proc_state(rd)?;
        let last_cpu = opt_cpu(rd)?;
        let pinned_cpu = opt_cpu(rd)?;
        let task = r.task()?;
        let rd = r.reader();
        let nframes = rd.usize()?;
        let mut kstack = Vec::with_capacity(nframes.min(1 << 10));
        for _ in 0..nframes {
            kstack.push(crate::snap::load_kframe(rd)?);
        }
        let cur_uop = if r.bool()? {
            Some(crate::snap::load_uop(r)?)
        } else {
            None
        };
        let rd = r.reader();
        let npages = rd.usize()?;
        let mut page_table = FastMap::default();
        for _ in 0..npages {
            let (vpn, pte) = crate::snap::load_pte(rd)?;
            page_table.insert(vpn, pte);
        }
        let cow_pages = rd.u32()?;
        let nfiles = rd.usize()?;
        let mut files = HashMap::new();
        for _ in 0..nfiles {
            let ino = rd.u32()?;
            files.insert(ino, rd.u64()?);
        }
        let quantum = rd.u32()?;
        let pending_child = if r.bool()? { Some(r.task()?) } else { None };
        let rd = r.reader();
        let image = if rd.bool()? {
            Some(crate::snap::load_image(rd)?)
        } else {
            None
        };
        let rng_state = rd.u64_vec()?;
        let rng_state: [u64; 4] = rng_state
            .try_into()
            .map_err(|_| SnapError::Corrupt("rng state length"))?;
        let zombie_children = rd.u32()?;
        Ok(Process {
            pid,
            slot,
            parent,
            state,
            last_cpu,
            pinned_cpu,
            task,
            kstack,
            cur_uop,
            page_table,
            cow_pages,
            files,
            quantum,
            pending_child,
            image,
            rng: SmallRng::from_state(rng_state),
            zombie_children,
        })
    }
}

/// The process table.
#[derive(Debug, Default)]
pub struct ProcTable {
    slots: Vec<Option<Process>>,
    next_pid: u32,
    live: usize,
}

impl ProcTable {
    /// Serializes every slot plus the pid allocator.
    pub(crate) fn save(&self, s: &mut crate::snap::TaskSaver<'_>) {
        s.writer().usize(self.slots.len());
        for slot in &self.slots {
            match slot {
                None => s.bool(false),
                Some(p) => {
                    s.bool(true);
                    p.save(s);
                }
            }
        }
        s.writer().u32(self.next_pid);
    }

    /// Restores a table written by [`ProcTable::save`] into a table of
    /// the same capacity. The live count is recomputed.
    pub(crate) fn load(
        &mut self,
        r: &mut crate::snap::TaskRestorer<'_, '_>,
    ) -> Result<(), crate::snap::SnapError> {
        if r.reader().usize()? != self.slots.len() {
            return Err(crate::snap::SnapError::Corrupt("proc table size"));
        }
        let mut live = 0;
        for i in 0..self.slots.len() {
            self.slots[i] = if r.bool()? {
                live += 1;
                Some(Process::load(r)?)
            } else {
                None
            };
        }
        self.next_pid = r.reader().u32()?;
        self.live = live;
        Ok(())
    }

    /// Creates a table with `nproc` slots.
    pub fn new(nproc: usize) -> Self {
        ProcTable {
            slots: (0..nproc).map(|_| None).collect(),
            next_pid: 1,
            live: 0,
        }
    }

    /// Allocates a slot for a new process running `task`.
    ///
    /// Returns `None` when the table is full.
    pub fn spawn(
        &mut self,
        task: Box<dyn UserTask>,
        parent: Option<ProcSlot>,
        quantum: u32,
        seed: u64,
    ) -> Option<ProcSlot> {
        let idx = self.slots.iter().position(|s| s.is_none())?;
        let slot = ProcSlot(idx as u16);
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.slots[idx] = Some(Process {
            pid,
            slot,
            parent,
            state: ProcState::Ready,
            last_cpu: None,
            pinned_cpu: None,
            task,
            kstack: Vec::new(),
            cur_uop: None,
            page_table: FastMap::default(),
            cow_pages: 0,
            files: HashMap::new(),
            quantum,
            pending_child: None,
            image: None,
            rng: SmallRng::seed_from_u64(seed ^ (pid.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            zombie_children: 0,
        });
        self.live += 1;
        Some(slot)
    }

    /// Frees a slot (after the zombie is reaped).
    pub fn reap(&mut self, slot: ProcSlot) {
        if self.slots[slot.index()].take().is_some() {
            self.live -= 1;
        }
    }

    /// The process in `slot`, if any.
    pub fn get(&self, slot: ProcSlot) -> Option<&Process> {
        self.slots.get(slot.index()).and_then(|s| s.as_ref())
    }

    /// Mutable access to the process in `slot`.
    pub fn get_mut(&mut self, slot: ProcSlot) -> Option<&mut Process> {
        self.slots.get_mut(slot.index()).and_then(|s| s.as_mut())
    }

    /// Number of live processes (including zombies).
    pub fn live(&self) -> usize {
        self.live
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Iterates over live processes.
    pub fn iter(&self) -> impl Iterator<Item = &Process> {
        self.slots.iter().flatten()
    }

    /// Iterates mutably over live processes.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Process> {
        self.slots.iter_mut().flatten()
    }

    /// Slots of all live processes sleeping on `chan`.
    pub fn sleepers(&self, chan: Chan) -> Vec<ProcSlot> {
        self.iter()
            .filter(|p| p.state == ProcState::Sleeping(chan))
            .map(|p| p.slot)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::ScriptTask;

    fn task() -> Box<dyn UserTask> {
        Box::new(ScriptTask::new("t", vec![]))
    }

    #[test]
    fn spawn_assigns_unique_pids_and_reuses_slots() {
        let mut t = ProcTable::new(2);
        let a = t.spawn(task(), None, 3, 1).unwrap();
        let b = t.spawn(task(), Some(a), 3, 1).unwrap();
        assert_eq!(t.live(), 2);
        assert!(t.spawn(task(), None, 3, 1).is_none(), "table full");
        let pid_b = t.get(b).unwrap().pid;
        t.reap(b);
        assert_eq!(t.live(), 1);
        let c = t.spawn(task(), None, 3, 1).unwrap();
        assert_eq!(c, b, "slot reused");
        assert_ne!(t.get(c).unwrap().pid, pid_b, "pid not reused");
    }

    #[test]
    fn sleepers_filters_by_channel() {
        let mut t = ProcTable::new(4);
        let a = t.spawn(task(), None, 3, 1).unwrap();
        let b = t.spawn(task(), None, 3, 1).unwrap();
        t.get_mut(a).unwrap().state = ProcState::Sleeping(Chan::Buf(1));
        t.get_mut(b).unwrap().state = ProcState::Sleeping(Chan::Buf(2));
        assert_eq!(t.sleepers(Chan::Buf(1)), vec![a]);
        assert_eq!(t.sleepers(Chan::PipeData(0)), vec![]);
    }

    #[test]
    fn parent_links() {
        let mut t = ProcTable::new(4);
        let a = t.spawn(task(), None, 3, 1).unwrap();
        let b = t.spawn(task(), Some(a), 3, 1).unwrap();
        assert_eq!(t.get(b).unwrap().parent, Some(a));
        assert!(!t.get(a).unwrap().in_kernel());
    }
}
