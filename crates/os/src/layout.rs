//! The kernel's physical memory layout: code symbol table and data
//! structures.
//!
//! The paper resolves miss addresses against the symbol table of the OS
//! image (Section 2.2); this module *is* that symbol table for our
//! synthetic kernel. Kernel text is laid out routine-by-routine from the
//! bottom of physical memory, followed by the statically allocated data
//! structures of Table 3 at their published sizes, per-process kernel
//! stacks and user structures, the buffer cache, and finally the frame
//! pool that backs user pages.

use crate::locks::LockFamily;
use crate::types::ProcSlot;
use oscar_machine::addr::{PAddr, Ppn, PAGE_SIZE};

/// Kernel subsystems, used to group routines in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Subsystem {
    /// Assembly exception entry/exit and dispatch.
    LowLevel,
    /// Scheduler and run-queue management.
    Sched,
    /// Clock and callout handling.
    Clock,
    /// Virtual memory.
    Vm,
    /// File system and buffer cache.
    Fs,
    /// Disk driver.
    Driver,
    /// Terminal / STREAMS drivers.
    Streams,
    /// Pipes.
    Pipe,
    /// Process-management system calls.
    ProcMgmt,
    /// Network stack (runs on CPU 1, lightly used here).
    Net,
    /// The idle loop.
    Idle,
    /// Miscellaneous system calls.
    Misc,
    /// Rarely executed cold text.
    Cold,
}

macro_rules! routines {
    ($($variant:ident => ($name:literal, $size:literal, $sub:ident);)*) => {
        /// Identifier of one kernel routine in the synthetic symbol table.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[allow(missing_docs)]
        pub enum Rid {
            $($variant,)*
        }

        impl Rid {
            /// Every routine, in default link order.
            pub const ALL: &'static [Rid] = &[$(Rid::$variant,)*];

            /// The routine's symbol name.
            pub fn name(self) -> &'static str {
                match self { $(Rid::$variant => $name,)* }
            }

            /// The routine's code size in bytes.
            pub fn size(self) -> u32 {
                match self { $(Rid::$variant => $size,)* }
            }

            /// The subsystem the routine belongs to.
            pub fn subsystem(self) -> Subsystem {
                match self { $(Rid::$variant => Subsystem::$sub,)* }
            }
        }
    };
}

routines! {
    // --- low-level exception handling (assembly) ---
    VecUtlbMiss    => ("utlbmiss",        128, LowLevel);
    VecGeneral     => ("exception_vec",   256, LowLevel);
    ExcSave        => ("exc_save_regs",   640, LowLevel);
    ExcRestore     => ("exc_restore_regs",512, LowLevel);
    TrapDispatch   => ("trap",           2048, LowLevel);
    SyscallEntry   => ("syscall_entry",   896, LowLevel);
    SyscallExit    => ("syscall_exit",    640, LowLevel);
    IntrDispatch   => ("intr_dispatch",   768, LowLevel);
    // --- scheduler ---
    SaveCtx        => ("save_ctx",        320, Sched);
    RestoreCtx     => ("resume_ctx",      352, Sched);
    Setrq          => ("setrq",           416, Sched);
    Remrq          => ("remrq",           384, Sched);
    Swtch          => ("swtch",           832, Sched);
    PickProc       => ("choose_proc",     576, Sched);
    SchedCpu       => ("schedcpu",       1536, Sched);
    QuantumTick    => ("roundrobin",      288, Sched);
    // --- clock ---
    ClockIntr      => ("clock_intr",     1920, Clock);
    CalloutScan    => ("timeout_scan",    704, Clock);
    AddCallout     => ("timeout_add",     448, Clock);
    ItimerCheck    => ("itimer_check",    512, Clock);
    // --- virtual memory ---
    VFault         => ("vfault",         3072, Vm);
    TlbMissSlow    => ("tlbmiss_slow",   1024, Vm);
    TlbDropin      => ("tlb_dropin",      256, Vm);
    PageAlloc      => ("pagealloc",      1664, Vm);
    PageFree       => ("pagefree",       1024, Vm);
    PageoutScan    => ("pageout_scan",   1408, Vm);
    SwapOut        => ("swapout",        2048, Vm);
    Bcopy          => ("bcopy",           288, Vm);
    Bclear         => ("bzero",           160, Vm);
    CowFault       => ("cow_fault",      1280, Vm);
    GrowReg        => ("growreg",         960, Vm);
    PtAlloc        => ("ptalloc",         768, Vm);
    TlbFlush       => ("tlbflush",        224, Vm);
    IcacheFlushR   => ("icache_flush",    192, Vm);
    // --- file system ---
    ReadSys        => ("read",           1152, Fs);
    WriteSys       => ("write",          1216, Fs);
    RdwrSetup      => ("rdwr_setup",     1792, Fs);
    CopyIn         => ("copyin",          256, Fs);
    CopyOut        => ("copyout",         256, Fs);
    Uiomove        => ("uiomove",         640, Fs);
    GetBlk         => ("getblk",         1408, Fs);
    BRead          => ("bread",           896, Fs);
    BWrite         => ("bwrite",          960, Fs);
    BRelse         => ("brelse",          512, Fs);
    BioWait        => ("biowait",         384, Fs);
    BioDone        => ("biodone",         448, Fs);
    Namei          => ("namei",          3456, Fs);
    IGet           => ("iget",           1280, Fs);
    IPut           => ("iput",            896, Fs);
    IAlloc         => ("ialloc",         1152, Fs);
    IUpdate        => ("iupdat",          704, Fs);
    DirLookup      => ("dirlookup",      1536, Fs);
    FileAlloc      => ("falloc",          512, Fs);
    Bmap           => ("bmap",           1664, Fs);
    DiskBlkAlloc   => ("alloc_blk",      1088, Fs);
    DiskBlkFree    => ("free_blk",        768, Fs);
    // --- disk driver ---
    DkStrategy     => ("dksc_strategy",  1920, Driver);
    DkStart        => ("dksc_start",     1408, Driver);
    DkIntr         => ("dksc_intr",      2560, Driver);
    DiskSort       => ("disksort",        576, Driver);
    ScsiCmd        => ("scsi_cmd",       3328, Driver);
    ScsiDma        => ("scsi_dma",       1792, Driver);
    // --- terminal / STREAMS ---
    StrWrite       => ("strwrite",       2176, Streams);
    StrRead        => ("strread",        1984, Streams);
    StrPutq        => ("putq",            640, Streams);
    StrSvc         => ("str_runqueues",  1536, Streams);
    TtyOut         => ("ttyout",         1280, Streams);
    TtyIn          => ("ttyin",          1152, Streams);
    ConsPoll       => ("cons_poll",       512, Streams);
    // --- pipes ---
    PipeRead       => ("pipe_read",       896, Pipe);
    PipeWrite      => ("pipe_write",      960, Pipe);
    PipeAlloc      => ("pipe_alloc",      640, Pipe);
    // --- process management ---
    ForkSys        => ("fork",           2944, ProcMgmt);
    ExecSys        => ("exece",          4224, ProcMgmt);
    ExitSys        => ("exit",           1920, ProcMgmt);
    WaitSys        => ("wait",           1280, ProcMgmt);
    BrkSys         => ("sbrk",            768, ProcMgmt);
    SginapSys      => ("sginap",          448, ProcMgmt);
    GetPidMisc     => ("getpid_misc",     384, ProcMgmt);
    SigDeliver     => ("psig",           1664, ProcMgmt);
    SigSend        => ("kill_internal",   896, ProcMgmt);
    ShmAttach      => ("shmat",          1216, ProcMgmt);
    SemOp          => ("semop",          1408, ProcMgmt);
    // --- network ---
    NetInput       => ("ip_input",       3072, Net);
    NetOutput      => ("ip_output",      2816, Net);
    SockRecv       => ("soreceive",      2432, Net);
    // --- idle ---
    IdleLoop       => ("idle_loop",        96, Idle);
    // --- miscellaneous system calls ---
    OpenSys        => ("open",           1024, Misc);
    CloseSys       => ("close",           576, Misc);
    StatSys        => ("stat",            896, Misc);
    IoctlSys       => ("ioctl",          1344, Misc);
    DupSys         => ("dup",             320, Misc);
    LseekSys       => ("lseek",           288, Misc);
    AccessSys      => ("access",          512, Misc);
    UnlinkSys      => ("unlink",         1088, Misc);
    CreatSys       => ("creat",           960, Misc);
    ChdirSys       => ("chdir",           448, Misc);
    TimeSys        => ("gettimeofday",    256, Misc);
    UlimitMisc     => ("ulimit_misc",     320, Misc);
    // --- cold text (rarely executed bulk of the kernel image) ---
    ColdFs         => ("fs_cold_text",  49152, Cold);
    ColdVm         => ("vm_cold_text",  32768, Cold);
    ColdDriver     => ("drv_cold_text", 57344, Cold);
    ColdNet        => ("net_cold_text", 49152, Cold);
    ColdMisc       => ("misc_cold_text",65536, Cold);
}

/// Structural sizes (Table 3 of the paper, plus implementation-defined
/// companions). All byte counts.
pub mod sizes {
    /// Per-process kernel stack.
    pub const KERNEL_STACK: u64 = 4096;
    /// PCB section of the user structure (context-switch register save).
    pub const PCB: u64 = 240;
    /// Eframe section of the user structure (exception register save).
    pub const EFRAME: u64 = 172;
    /// Rest of the user structure (file descriptors, syscall state, ...).
    pub const U_REST: u64 = 3684;
    /// Whole user structure.
    pub const USTRUCT: u64 = PCB + EFRAME + U_REST;
    /// One process-table entry.
    pub const PROC_ENTRY: u64 = 360;
    /// Number of process-table slots.
    pub const NPROC: u64 = 128;
    /// One physical-page descriptor (pfdat entry).
    pub const PFDAT_ENTRY: u64 = 26;
    /// One buffer-cache header.
    pub const BUF_HDR: u64 = 128;
    /// Number of buffer-cache buffers.
    pub const NBUF: u64 = 136;
    /// One in-core inode.
    pub const INODE: u64 = 256;
    /// Number of in-core inodes.
    pub const NINODE: u64 = 268;
    /// The run-queue head structure.
    pub const RUNQ_HEAD: u64 = 24;
    /// The free-page hash buckets array.
    pub const FREE_PG_BUCK: u64 = 3072;
    /// The callout (timeout) table.
    pub const CALLOUT: u64 = 4096;
    /// Miscellaneous kernel globals (time, flags, `hi_ndproc`, ...).
    pub const MISC_DATA: u64 = 8192;
    /// Per-process page-table page (the `Shr_x`-protected structures).
    pub const PAGE_TABLE: u64 = 4096;
    /// Number of pipe buffers.
    pub const NPIPE: u64 = 32;
}

/// Classification of a physical address against the kernel layout
/// (what the paper gets by resolving the address in the symbol table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelRegion {
    /// Kernel text.
    Text,
    /// The process table.
    ProcTable,
    /// Physical page descriptors.
    Pfdat,
    /// Buffer-cache headers.
    BufHeaders,
    /// The in-core inode table.
    InodeTable,
    /// The run-queue head.
    RunQueue,
    /// Free-page hash buckets.
    FreePgBuck,
    /// The callout table.
    Callout,
    /// Miscellaneous kernel globals.
    MiscData,
    /// Per-process page tables.
    PageTables,
    /// A per-process kernel stack.
    KernelStack,
    /// The PCB section of a user structure.
    Pcb,
    /// The eframe section of a user structure.
    Eframe,
    /// The rest of a user structure.
    URest,
    /// Buffer-cache data pages.
    BufData,
    /// Pipe buffers.
    PipeBuf,
    /// The user frame pool (not a kernel structure).
    FramePool,
}

impl KernelRegion {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            KernelRegion::Text => "kernel-text",
            KernelRegion::ProcTable => "process-table",
            KernelRegion::Pfdat => "pfdat",
            KernelRegion::BufHeaders => "buffer-headers",
            KernelRegion::InodeTable => "inode-table",
            KernelRegion::RunQueue => "run-queue",
            KernelRegion::FreePgBuck => "free-pg-buckets",
            KernelRegion::Callout => "callout-table",
            KernelRegion::MiscData => "misc-globals",
            KernelRegion::PageTables => "page-tables",
            KernelRegion::KernelStack => "kernel-stack",
            KernelRegion::Pcb => "pcb",
            KernelRegion::Eframe => "eframe",
            KernelRegion::URest => "u-rest",
            KernelRegion::BufData => "buffer-data",
            KernelRegion::PipeBuf => "pipe-buffers",
            KernelRegion::FramePool => "frame-pool",
        }
    }
}

/// A physical address resolved against the kernel symbol table: the
/// named object containing it plus its [`KernelRegion`]. This is what
/// the paper's postprocessor gets by looking a miss address up in the
/// OS image's symbol table (Section 2.2); the hot-line analyzer uses it
/// to attribute contended cache lines to kernel structures by name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol {
    /// Human-readable name, e.g. `text:swtch+0x20`, `proc[5]+0x8`,
    /// `pfdat[1234]`, `lock:runq`.
    pub name: String,
    /// The region the address classifies into.
    pub region: KernelRegion,
}

/// Byte stride of one named lock word in the misc-data carve-out.
const LOCK_WORD_BYTES: u64 = 16;

fn off_suffix(off: u64) -> String {
    if off == 0 {
        String::new()
    } else {
        format!("+0x{off:x}")
    }
}

fn page_align(x: u64) -> u64 {
    (x + PAGE_SIZE - 1) & !(PAGE_SIZE - 1)
}

/// The resolved kernel memory map.
#[derive(Debug, Clone)]
pub struct Layout {
    order: Vec<Rid>,
    routine_base: Vec<u64>, // indexed by Rid as usize via position in ALL
    text_base: u64,
    text_end: u64,
    proc_table: u64,
    pfdat: u64,
    pfdat_end: u64,
    buf_hdrs: u64,
    inode_table: u64,
    runq: u64,
    free_pg_buck: u64,
    callout: u64,
    misc_data: u64,
    page_tables: u64,
    kernel_stacks: u64,
    ustructs: u64,
    buf_data: u64,
    pipe_buf: u64,
    /// Base of the first *extra* text replica (cluster mode); 0 when
    /// there are none.
    replica_base: u64,
    /// Total text copies (1 = unreplicated).
    replicas: u8,
    frame_pool_first: Ppn,
    frame_pool_end: Ppn,
    memory_bytes: u64,
}

impl Layout {
    /// Physical base of the escape-address range: chosen above all real
    /// memory, so escape reads can never collide with genuine accesses.
    pub const ESCAPE_BASE: u64 = 0x1000_0000;

    /// Builds the layout for a machine with `memory_bytes` of memory
    /// using the default link order.
    pub fn new(memory_bytes: u64) -> Self {
        Self::with_order_and_replicas(memory_bytes, Rid::ALL.to_vec(), 1)
    }

    /// Builds the layout with the kernel text replicated `replicas`
    /// times (one copy per cluster, the paper's Section 6 proposal).
    pub fn replicated(memory_bytes: u64, replicas: u8) -> Self {
        Self::with_order_and_replicas(memory_bytes, Rid::ALL.to_vec(), replicas.max(1))
    }

    /// Builds the layout with an explicit routine link order (the code
    /// layout optimization ablation permutes hot routines to reduce
    /// I-cache conflicts).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of [`Rid::ALL`], or if the
    /// layout does not fit in `memory_bytes`.
    pub fn with_order(memory_bytes: u64, order: Vec<Rid>) -> Self {
        Self::with_order_and_replicas(memory_bytes, order, 1)
    }

    /// Builds the layout with an explicit link order and text replica
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of [`Rid::ALL`], or if the
    /// layout does not fit in `memory_bytes`.
    pub fn with_order_and_replicas(memory_bytes: u64, order: Vec<Rid>, replicas: u8) -> Self {
        assert_eq!(order.len(), Rid::ALL.len(), "order must cover all routines");
        {
            let mut seen = order.clone();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), Rid::ALL.len(), "order must be a permutation");
        }
        let text_base = PAGE_SIZE; // leave page 0 unused
        let mut routine_base = vec![0u64; Rid::ALL.len()];
        let mut cursor = text_base;
        for &rid in &order {
            // 32-byte alignment, as a linker would.
            cursor = (cursor + 31) & !31;
            routine_base[rid as usize] = cursor;
            cursor += rid.size() as u64;
        }
        let text_end = cursor;

        let mut at = page_align(text_end);
        let mut take = |bytes: u64| {
            let base = at;
            at = page_align(at + bytes);
            base
        };
        let proc_table = take(sizes::NPROC * sizes::PROC_ENTRY);
        let npages = memory_bytes / PAGE_SIZE;
        let pfdat = take(npages * sizes::PFDAT_ENTRY);
        let pfdat_end = pfdat + npages * sizes::PFDAT_ENTRY;
        let buf_hdrs = take(sizes::NBUF * sizes::BUF_HDR);
        let inode_table = take(sizes::NINODE * sizes::INODE);
        let runq = take(sizes::RUNQ_HEAD);
        let free_pg_buck = take(sizes::FREE_PG_BUCK);
        let callout = take(sizes::CALLOUT);
        let misc_data = take(sizes::MISC_DATA);
        let page_tables = take(sizes::NPROC * sizes::PAGE_TABLE);
        let kernel_stacks = take(sizes::NPROC * sizes::KERNEL_STACK);
        let ustructs = take(sizes::NPROC * sizes::USTRUCT);
        let buf_data = take(sizes::NBUF * PAGE_SIZE);
        let pipe_buf = take(sizes::NPIPE * PAGE_SIZE);
        let replicas = replicas.max(1);
        let replica_stride = page_align(text_end);
        let replica_base = if replicas > 1 {
            take(replica_stride * (replicas as u64 - 1))
        } else {
            0
        };
        let frame_pool_first = Ppn((at / PAGE_SIZE) as u32);
        let frame_pool_end = Ppn(npages as u32);
        assert!(
            frame_pool_first.0 < frame_pool_end.0,
            "kernel layout does not fit in {memory_bytes} bytes"
        );
        Layout {
            order,
            routine_base,
            text_base,
            text_end,
            proc_table,
            pfdat,
            pfdat_end,
            buf_hdrs,
            inode_table,
            runq,
            free_pg_buck,
            callout,
            misc_data,
            page_tables,
            kernel_stacks,
            ustructs,
            buf_data,
            pipe_buf,
            replica_base,
            replicas,
            frame_pool_first,
            frame_pool_end,
            memory_bytes,
        }
    }

    /// Number of kernel-text copies (1 = unreplicated).
    pub fn replicas(&self) -> u8 {
        self.replicas
    }

    /// Stride between text replicas in bytes.
    fn replica_stride(&self) -> u64 {
        page_align(self.text_end)
    }

    /// Rebases a canonical text address into cluster `k`'s replica
    /// (identity for cluster 0 or unreplicated layouts).
    pub fn replicate_text_addr(&self, paddr: PAddr, cluster: u8) -> PAddr {
        if cluster == 0 || self.replicas <= 1 || paddr.raw() >= self.text_end {
            return paddr;
        }
        let k = (cluster as u64).min(self.replicas as u64 - 1);
        PAddr::new(self.replica_base + (k - 1) * self.replica_stride() + paddr.raw())
    }

    /// Maps an address inside any text replica back to the canonical
    /// copy (identity for everything else).
    pub fn canonical_text_addr(&self, paddr: PAddr) -> PAddr {
        let a = paddr.raw();
        if self.replicas <= 1 || a < self.replica_base {
            return paddr;
        }
        let span = self.replica_stride() * (self.replicas as u64 - 1);
        if a >= self.replica_base + span {
            return paddr;
        }
        PAddr::new((a - self.replica_base) % self.replica_stride())
    }

    /// `(first_page, pages)` of cluster `k`'s text copy (`k = 0` is the
    /// canonical copy).
    pub fn replica_page_range(&self, k: u8) -> (Ppn, u32) {
        let pages = (self.replica_stride() / PAGE_SIZE) as u32;
        if k == 0 || self.replicas <= 1 {
            (Ppn(0), pages)
        } else {
            let base = self.replica_base
                + (k as u64 - 1).min(self.replicas as u64 - 2) * self.replica_stride();
            (Ppn((base / PAGE_SIZE) as u32), pages)
        }
    }

    /// The link order in effect.
    pub fn order(&self) -> &[Rid] {
        &self.order
    }

    /// Base physical address of a routine's code.
    pub fn routine_base(&self, rid: Rid) -> PAddr {
        PAddr::new(self.routine_base[rid as usize])
    }

    /// `(base, size)` of a routine's code.
    pub fn routine_range(&self, rid: Rid) -> (PAddr, u32) {
        (self.routine_base(rid), rid.size())
    }

    /// The routine containing a text address, if any (replica
    /// addresses resolve to their canonical routine).
    pub fn routine_at(&self, paddr: PAddr) -> Option<Rid> {
        let paddr = self.canonical_text_addr(paddr);
        let a = paddr.raw();
        if a < self.text_base || a >= self.text_end {
            return None;
        }
        // Linear scan is fine: only reports use this.
        Rid::ALL.iter().copied().find(|&rid| {
            let base = self.routine_base[rid as usize];
            a >= base && a < base + rid.size() as u64
        })
    }

    /// Total kernel text bytes (including alignment padding).
    pub fn text_size(&self) -> u64 {
        self.text_end - self.text_base
    }

    /// Address of a process slot's process-table entry.
    pub fn proc_entry(&self, slot: ProcSlot) -> PAddr {
        PAddr::new(self.proc_table + slot.index() as u64 * sizes::PROC_ENTRY)
    }

    /// Address of a process slot's kernel stack (4 KB).
    pub fn kernel_stack(&self, slot: ProcSlot) -> PAddr {
        PAddr::new(self.kernel_stacks + slot.index() as u64 * sizes::KERNEL_STACK)
    }

    /// Address of a process slot's user structure (PCB at +0, eframe at
    /// +240, rest at +412).
    pub fn ustruct(&self, slot: ProcSlot) -> PAddr {
        PAddr::new(self.ustructs + slot.index() as u64 * sizes::USTRUCT)
    }

    /// Address of the PCB section of a slot's user structure.
    pub fn pcb(&self, slot: ProcSlot) -> PAddr {
        self.ustruct(slot)
    }

    /// Address of the eframe section of a slot's user structure.
    pub fn eframe(&self, slot: ProcSlot) -> PAddr {
        self.ustruct(slot).add(sizes::PCB)
    }

    /// Address of the "rest" section of a slot's user structure.
    pub fn u_rest(&self, slot: ProcSlot) -> PAddr {
        self.ustruct(slot).add(sizes::PCB + sizes::EFRAME)
    }

    /// Address of a slot's page-table page.
    pub fn page_table(&self, slot: ProcSlot) -> PAddr {
        PAddr::new(self.page_tables + slot.index() as u64 * sizes::PAGE_TABLE)
    }

    /// Address of the pfdat entry describing physical page `ppn`.
    pub fn pfdat_entry(&self, ppn: Ppn) -> PAddr {
        PAddr::new(self.pfdat + ppn.0 as u64 * sizes::PFDAT_ENTRY)
    }

    /// `(base, len)` of the whole pfdat array.
    pub fn pfdat_region(&self) -> (PAddr, u64) {
        (PAddr::new(self.pfdat), self.pfdat_end - self.pfdat)
    }

    /// Address of buffer header `i`.
    pub fn buf_hdr(&self, i: usize) -> PAddr {
        debug_assert!((i as u64) < sizes::NBUF);
        PAddr::new(self.buf_hdrs + i as u64 * sizes::BUF_HDR)
    }

    /// Address of buffer `i`'s 4 KB data page.
    pub fn buf_data(&self, i: usize) -> PAddr {
        debug_assert!((i as u64) < sizes::NBUF);
        PAddr::new(self.buf_data + i as u64 * PAGE_SIZE)
    }

    /// Address of in-core inode `i`.
    pub fn inode(&self, i: usize) -> PAddr {
        debug_assert!((i as u64) < sizes::NINODE);
        PAddr::new(self.inode_table + i as u64 * sizes::INODE)
    }

    /// Address of the run-queue head.
    pub fn run_queue(&self) -> PAddr {
        PAddr::new(self.runq)
    }

    /// Address of the free-page buckets array.
    pub fn free_pg_buck(&self) -> PAddr {
        PAddr::new(self.free_pg_buck)
    }

    /// Address of the callout table.
    pub fn callout(&self) -> PAddr {
        PAddr::new(self.callout)
    }

    /// Address of the miscellaneous kernel globals.
    pub fn misc_data(&self) -> PAddr {
        PAddr::new(self.misc_data)
    }

    /// Address of the named lock word for `family`.
    ///
    /// The synthetic kernel keeps its lock words in the tail of the
    /// misc-data globals, one cache line (16 bytes) per lock family —
    /// the real kernel's `Runqlk`, `Memlock`, ... are likewise globals
    /// the symbol table resolves by name. Synchronization accesses
    /// travel on the separate sync bus and never appear in the trace;
    /// these addresses exist so the symbolizer can attribute *data*
    /// accesses that land in the lock area, and so reports can name
    /// the lock words the paper talks about.
    pub fn lock_word(&self, family: LockFamily) -> PAddr {
        let carve = LockFamily::ALL.len() as u64 * LOCK_WORD_BYTES;
        let idx = LockFamily::ALL
            .iter()
            .position(|&f| f == family)
            .expect("ALL contains every family") as u64;
        PAddr::new(self.misc_data + sizes::MISC_DATA - carve + idx * LOCK_WORD_BYTES)
    }

    /// Address of pipe buffer `i`.
    pub fn pipe_buf(&self, i: usize) -> PAddr {
        debug_assert!((i as u64) < sizes::NPIPE);
        PAddr::new(self.pipe_buf + i as u64 * PAGE_SIZE)
    }

    /// First frame of the user frame pool.
    pub fn frame_pool_first(&self) -> Ppn {
        self.frame_pool_first
    }

    /// One past the last frame of the user frame pool.
    pub fn frame_pool_end(&self) -> Ppn {
        self.frame_pool_end
    }

    /// Number of frames available to user pages.
    pub fn frame_pool_len(&self) -> u32 {
        self.frame_pool_end.0 - self.frame_pool_first.0
    }

    /// Memory size this layout was built for.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes
    }

    /// Classifies a physical address against the kernel map.
    pub fn classify(&self, paddr: PAddr) -> KernelRegion {
        let a = paddr.raw();
        if a < self.text_end {
            return KernelRegion::Text;
        }
        let within = |base: u64, len: u64| a >= base && a < base + len;
        if within(self.proc_table, sizes::NPROC * sizes::PROC_ENTRY) {
            KernelRegion::ProcTable
        } else if a >= self.pfdat && a < self.pfdat_end {
            KernelRegion::Pfdat
        } else if within(self.buf_hdrs, sizes::NBUF * sizes::BUF_HDR) {
            KernelRegion::BufHeaders
        } else if within(self.inode_table, sizes::NINODE * sizes::INODE) {
            KernelRegion::InodeTable
        } else if within(self.runq, sizes::RUNQ_HEAD) {
            KernelRegion::RunQueue
        } else if within(self.free_pg_buck, sizes::FREE_PG_BUCK) {
            KernelRegion::FreePgBuck
        } else if within(self.callout, sizes::CALLOUT) {
            KernelRegion::Callout
        } else if within(self.misc_data, sizes::MISC_DATA) {
            KernelRegion::MiscData
        } else if within(self.page_tables, sizes::NPROC * sizes::PAGE_TABLE) {
            KernelRegion::PageTables
        } else if within(self.kernel_stacks, sizes::NPROC * sizes::KERNEL_STACK) {
            KernelRegion::KernelStack
        } else if within(self.ustructs, sizes::NPROC * sizes::USTRUCT) {
            let off = (a - self.ustructs) % sizes::USTRUCT;
            if off < sizes::PCB {
                KernelRegion::Pcb
            } else if off < sizes::PCB + sizes::EFRAME {
                KernelRegion::Eframe
            } else {
                KernelRegion::URest
            }
        } else if within(self.buf_data, sizes::NBUF * PAGE_SIZE) {
            KernelRegion::BufData
        } else if within(self.pipe_buf, sizes::NPIPE * PAGE_SIZE) {
            KernelRegion::PipeBuf
        } else if self.replicas > 1
            && within(
                self.replica_base,
                self.replica_stride() * (self.replicas as u64 - 1),
            )
        {
            KernelRegion::Text
        } else {
            KernelRegion::FramePool
        }
    }

    /// Resolves a physical address to a named kernel object — the
    /// symbolizer behind the hot-line attribution exhibits. Total:
    /// every address resolves to exactly one [`Symbol`], whose region
    /// always equals [`Layout::classify`] of the same address.
    ///
    /// Names are stable and index the containing object: `text:<routine>`
    /// (replica copies get a `replica<k>:` prefix), `proc[<slot>]`,
    /// `pfdat[<ppn>]`, `kstack[<slot>]`, `pcb[<slot>]`, `lock:<Family>`,
    /// `frame[<ppn>]`, ... with a `+0x<off>` suffix for nonzero offsets
    /// within the object. Addresses at or above [`Layout::ESCAPE_BASE`]
    /// resolve to `escape:0x<addr>`.
    pub fn symbol_at(&self, paddr: PAddr) -> Symbol {
        let a = paddr.raw();
        if a >= Self::ESCAPE_BASE {
            return Symbol {
                name: format!("escape:0x{a:x}"),
                region: self.classify(paddr),
            };
        }
        let region = self.classify(paddr);
        let name = match region {
            KernelRegion::Text => {
                let canon = self.canonical_text_addr(paddr);
                let prefix = if canon == paddr {
                    String::new()
                } else {
                    let k = (a - self.replica_base) / self.replica_stride() + 1;
                    format!("replica{k}:")
                };
                match self.routine_at(paddr) {
                    Some(rid) => {
                        let off = canon.raw() - self.routine_base[rid as usize];
                        format!("{prefix}text:{}{}", rid.name(), off_suffix(off))
                    }
                    // Alignment padding between routines (or page 0).
                    None => format!("{prefix}text{}", off_suffix(canon.raw())),
                }
            }
            KernelRegion::ProcTable => {
                let rel = a - self.proc_table;
                format!(
                    "proc[{}]{}",
                    rel / sizes::PROC_ENTRY,
                    off_suffix(rel % sizes::PROC_ENTRY)
                )
            }
            KernelRegion::Pfdat => {
                let rel = a - self.pfdat;
                format!(
                    "pfdat[{}]{}",
                    rel / sizes::PFDAT_ENTRY,
                    off_suffix(rel % sizes::PFDAT_ENTRY)
                )
            }
            KernelRegion::BufHeaders => {
                let rel = a - self.buf_hdrs;
                format!(
                    "bufhdr[{}]{}",
                    rel / sizes::BUF_HDR,
                    off_suffix(rel % sizes::BUF_HDR)
                )
            }
            KernelRegion::InodeTable => {
                let rel = a - self.inode_table;
                format!(
                    "inode[{}]{}",
                    rel / sizes::INODE,
                    off_suffix(rel % sizes::INODE)
                )
            }
            KernelRegion::RunQueue => format!("runq{}", off_suffix(a - self.runq)),
            KernelRegion::FreePgBuck => {
                format!("freepgbuck{}", off_suffix(a - self.free_pg_buck))
            }
            KernelRegion::Callout => format!("callout{}", off_suffix(a - self.callout)),
            KernelRegion::MiscData => {
                let carve = LockFamily::ALL.len() as u64 * LOCK_WORD_BYTES;
                let lock_base = self.misc_data + sizes::MISC_DATA - carve;
                if a >= lock_base {
                    let rel = a - lock_base;
                    let fam = LockFamily::ALL[(rel / LOCK_WORD_BYTES) as usize];
                    format!("lock:{}{}", fam.label(), off_suffix(rel % LOCK_WORD_BYTES))
                } else {
                    format!("misc{}", off_suffix(a - self.misc_data))
                }
            }
            KernelRegion::PageTables => {
                let rel = a - self.page_tables;
                format!(
                    "pagetable[{}]{}",
                    rel / sizes::PAGE_TABLE,
                    off_suffix(rel % sizes::PAGE_TABLE)
                )
            }
            KernelRegion::KernelStack => {
                let rel = a - self.kernel_stacks;
                format!(
                    "kstack[{}]{}",
                    rel / sizes::KERNEL_STACK,
                    off_suffix(rel % sizes::KERNEL_STACK)
                )
            }
            KernelRegion::Pcb | KernelRegion::Eframe | KernelRegion::URest => {
                let rel = a - self.ustructs;
                let (slot, off) = (rel / sizes::USTRUCT, rel % sizes::USTRUCT);
                match region {
                    KernelRegion::Pcb => format!("pcb[{slot}]{}", off_suffix(off)),
                    KernelRegion::Eframe => {
                        format!("eframe[{slot}]{}", off_suffix(off - sizes::PCB))
                    }
                    _ => format!("u[{slot}]{}", off_suffix(off - sizes::PCB - sizes::EFRAME)),
                }
            }
            KernelRegion::BufData => {
                let rel = a - self.buf_data;
                format!(
                    "bufdata[{}]{}",
                    rel / PAGE_SIZE,
                    off_suffix(rel % PAGE_SIZE)
                )
            }
            KernelRegion::PipeBuf => {
                let rel = a - self.pipe_buf;
                format!("pipe[{}]{}", rel / PAGE_SIZE, off_suffix(rel % PAGE_SIZE))
            }
            KernelRegion::FramePool => {
                format!("frame[{}]{}", a / PAGE_SIZE, off_suffix(a % PAGE_SIZE))
            }
        };
        Symbol { name, region }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> Layout {
        Layout::new(32 * 1024 * 1024)
    }

    #[test]
    fn routines_are_contiguous_and_disjoint() {
        let l = layout();
        let mut ranges: Vec<(u64, u64)> = Rid::ALL
            .iter()
            .map(|&r| {
                let (b, s) = l.routine_range(r);
                (b.raw(), b.raw() + s as u64)
            })
            .collect();
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {w:?}");
        }
        assert!(l.text_size() > 300 * 1024, "kernel text should be sizable");
        assert!(l.text_size() < 1024 * 1024);
    }

    #[test]
    fn routine_at_resolves_addresses() {
        let l = layout();
        for &rid in Rid::ALL {
            let (base, size) = l.routine_range(rid);
            assert_eq!(l.routine_at(base), Some(rid));
            assert_eq!(l.routine_at(base.add(size as u64 - 1)), Some(rid));
        }
        assert_eq!(l.routine_at(PAddr::new(0)), None, "page 0 is unused");
    }

    #[test]
    fn table3_sizes_match_paper() {
        assert_eq!(sizes::KERNEL_STACK, 4096);
        assert_eq!(sizes::PCB, 240);
        assert_eq!(sizes::EFRAME, 172);
        assert_eq!(sizes::U_REST, 3684);
        assert_eq!(sizes::USTRUCT, 4096);
        assert_eq!(sizes::NPROC * sizes::PROC_ENTRY, 46080);
        assert_eq!(sizes::NBUF * sizes::BUF_HDR, 17408);
        assert_eq!(sizes::NINODE * sizes::INODE, 68608);
        assert_eq!(sizes::RUNQ_HEAD, 24);
        assert_eq!(sizes::FREE_PG_BUCK, 3072);
    }

    #[test]
    fn ustruct_sections_classify_correctly() {
        let l = layout();
        let s = ProcSlot(5);
        assert_eq!(l.classify(l.pcb(s)), KernelRegion::Pcb);
        assert_eq!(l.classify(l.pcb(s).add(239)), KernelRegion::Pcb);
        assert_eq!(l.classify(l.eframe(s)), KernelRegion::Eframe);
        assert_eq!(l.classify(l.eframe(s).add(171)), KernelRegion::Eframe);
        assert_eq!(l.classify(l.u_rest(s)), KernelRegion::URest);
        assert_eq!(
            l.classify(l.ustruct(s).add(sizes::USTRUCT - 1)),
            KernelRegion::URest
        );
    }

    #[test]
    fn structure_addresses_classify_to_their_regions() {
        let l = layout();
        assert_eq!(
            l.classify(l.proc_entry(ProcSlot(0))),
            KernelRegion::ProcTable
        );
        assert_eq!(
            l.classify(l.proc_entry(ProcSlot(127)).add(359)),
            KernelRegion::ProcTable
        );
        assert_eq!(l.classify(l.pfdat_entry(Ppn(0))), KernelRegion::Pfdat);
        assert_eq!(l.classify(l.buf_hdr(135)), KernelRegion::BufHeaders);
        assert_eq!(l.classify(l.inode(267)), KernelRegion::InodeTable);
        assert_eq!(l.classify(l.run_queue()), KernelRegion::RunQueue);
        assert_eq!(l.classify(l.free_pg_buck()), KernelRegion::FreePgBuck);
        assert_eq!(l.classify(l.callout()), KernelRegion::Callout);
        assert_eq!(
            l.classify(l.page_table(ProcSlot(3))),
            KernelRegion::PageTables
        );
        assert_eq!(
            l.classify(l.kernel_stack(ProcSlot(9))),
            KernelRegion::KernelStack
        );
        assert_eq!(l.classify(l.buf_data(10)), KernelRegion::BufData);
        assert_eq!(l.classify(l.pipe_buf(1)), KernelRegion::PipeBuf);
        assert_eq!(
            l.classify(l.frame_pool_first().base()),
            KernelRegion::FramePool
        );
        assert_eq!(l.classify(l.routine_base(Rid::Bcopy)), KernelRegion::Text);
    }

    #[test]
    fn frame_pool_has_most_of_memory() {
        let l = layout();
        // 32 MB machine: kernel should leave well over 20 MB of frames.
        assert!(l.frame_pool_len() > 5500, "{}", l.frame_pool_len());
        assert_eq!(l.frame_pool_end().0, 8192);
    }

    #[test]
    fn custom_order_places_first_routine_at_text_base() {
        let mut order = Rid::ALL.to_vec();
        // Move Bcopy to the front.
        let pos = order.iter().position(|&r| r == Rid::Bcopy).unwrap();
        order.swap(0, pos);
        let l = Layout::with_order(32 * 1024 * 1024, order);
        assert_eq!(l.routine_base(Rid::Bcopy).raw(), PAGE_SIZE);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn duplicate_order_rejected() {
        let mut order = Rid::ALL.to_vec();
        order[1] = order[0];
        let _ = Layout::with_order(32 * 1024 * 1024, order);
    }

    #[test]
    fn escape_base_is_outside_memory() {
        let l = layout();
        assert!(Layout::ESCAPE_BASE >= l.memory_bytes());
    }

    /// The named kernel structures occupy pairwise-disjoint address
    /// ranges: no byte belongs to two symbols.
    #[test]
    fn structure_ranges_are_disjoint() {
        let l = layout();
        let mut ranges: Vec<(u64, u64, &str)> = vec![
            (l.text_base, l.text_end, "text"),
            (
                l.proc_table,
                l.proc_table + sizes::NPROC * sizes::PROC_ENTRY,
                "proc",
            ),
            (l.pfdat, l.pfdat_end, "pfdat"),
            (
                l.buf_hdrs,
                l.buf_hdrs + sizes::NBUF * sizes::BUF_HDR,
                "bufhdr",
            ),
            (
                l.inode_table,
                l.inode_table + sizes::NINODE * sizes::INODE,
                "inode",
            ),
            (l.runq, l.runq + sizes::RUNQ_HEAD, "runq"),
            (
                l.free_pg_buck,
                l.free_pg_buck + sizes::FREE_PG_BUCK,
                "freepgbuck",
            ),
            (l.callout, l.callout + sizes::CALLOUT, "callout"),
            (l.misc_data, l.misc_data + sizes::MISC_DATA, "misc"),
            (
                l.page_tables,
                l.page_tables + sizes::NPROC * sizes::PAGE_TABLE,
                "pagetable",
            ),
            (
                l.kernel_stacks,
                l.kernel_stacks + sizes::NPROC * sizes::KERNEL_STACK,
                "kstack",
            ),
            (
                l.ustructs,
                l.ustructs + sizes::NPROC * sizes::USTRUCT,
                "ustruct",
            ),
            (l.buf_data, l.buf_data + sizes::NBUF * PAGE_SIZE, "bufdata"),
            (l.pipe_buf, l.pipe_buf + sizes::NPIPE * PAGE_SIZE, "pipe"),
            (
                l.frame_pool_first.base().raw(),
                l.frame_pool_end.base().raw(),
                "frames",
            ),
        ];
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "{} [{:#x},{:#x}) overlaps {} [{:#x},{:#x})",
                w[0].2,
                w[0].0,
                w[0].1,
                w[1].2,
                w[1].0,
                w[1].1
            );
        }
    }

    /// Symbolization is total and consistent: every address in kernel
    /// space resolves to exactly one symbol (the resolver is a total
    /// function) whose region agrees with `classify`, and the symbol
    /// name matches the region's naming scheme.
    #[test]
    fn symbolization_is_total_and_consistent() {
        let l = layout();
        let end = l.frame_pool_first().base().raw() + 4 * PAGE_SIZE;
        // A coarse stride with a prime offset visits every structure,
        // both sides of each boundary, and intra-object offsets.
        let mut a = 0u64;
        while a < end {
            let p = PAddr::new(a);
            let sym = l.symbol_at(p);
            assert!(!sym.name.is_empty(), "no symbol for {a:#x}");
            assert_eq!(sym.region, l.classify(p), "region mismatch at {a:#x}");
            a += 13;
        }
        // The escape range resolves too.
        let esc = l.symbol_at(PAddr::new(Layout::ESCAPE_BASE + 0x21));
        assert!(esc.name.starts_with("escape:0x"));
    }

    /// The structure accessors round-trip through the resolver: the
    /// address of a named object symbolizes to that object's name.
    #[test]
    fn accessors_round_trip_through_symbolizer() {
        let l = layout();
        for &rid in Rid::ALL {
            let (base, size) = l.routine_range(rid);
            let s = l.symbol_at(base);
            assert_eq!(s.name, format!("text:{}", rid.name()));
            assert_eq!(s.region, KernelRegion::Text);
            let last = l.symbol_at(base.add(size as u64 - 1));
            assert!(
                last.name.starts_with(&format!("text:{}", rid.name())),
                "{}",
                last.name
            );
        }
        for slot in [0usize, 1, 63, 127] {
            let s = ProcSlot(slot as u16);
            assert_eq!(l.symbol_at(l.proc_entry(s)).name, format!("proc[{slot}]"));
            assert_eq!(
                l.symbol_at(l.proc_entry(s).add(8)).name,
                format!("proc[{slot}]+0x8")
            );
            assert_eq!(
                l.symbol_at(l.kernel_stack(s)).name,
                format!("kstack[{slot}]")
            );
            assert_eq!(l.symbol_at(l.pcb(s)).name, format!("pcb[{slot}]"));
            assert_eq!(l.symbol_at(l.eframe(s)).name, format!("eframe[{slot}]"));
            assert_eq!(l.symbol_at(l.u_rest(s)).name, format!("u[{slot}]"));
            assert_eq!(
                l.symbol_at(l.page_table(s)).name,
                format!("pagetable[{slot}]")
            );
        }
        for ppn in [0u32, 100, 8191] {
            assert_eq!(
                l.symbol_at(l.pfdat_entry(Ppn(ppn))).name,
                format!("pfdat[{ppn}]")
            );
        }
        assert_eq!(l.symbol_at(l.run_queue()).name, "runq");
        assert_eq!(l.symbol_at(l.run_queue().add(8)).name, "runq+0x8");
        assert_eq!(l.symbol_at(l.buf_hdr(5)).name, "bufhdr[5]");
        assert_eq!(l.symbol_at(l.inode(7)).name, "inode[7]");
        assert_eq!(l.symbol_at(l.misc_data()).name, "misc");
    }

    /// Every lock family has a named word inside misc-data, and the
    /// words symbolize back to `lock:<Family>`.
    #[test]
    fn lock_words_are_named_and_disjoint() {
        let l = layout();
        let mut seen = Vec::new();
        for &fam in &LockFamily::ALL {
            let w = l.lock_word(fam);
            assert_eq!(l.classify(w), KernelRegion::MiscData);
            let s = l.symbol_at(w);
            assert_eq!(s.name, format!("lock:{}", fam.label()));
            assert_eq!(
                l.symbol_at(w.add(4)).name,
                format!("lock:{}+0x4", fam.label())
            );
            seen.push(w.raw());
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), LockFamily::ALL.len());
    }

    /// Replicated layouts symbolize replica text back to the canonical
    /// routine, tagged with the replica index.
    #[test]
    fn replica_text_symbolizes_to_canonical_routine() {
        let l = Layout::replicated(64 * 1024 * 1024, 3);
        let base = l.routine_base(Rid::Swtch);
        let rep = l.replicate_text_addr(base.add(4), 2);
        assert_ne!(rep, base.add(4));
        let s = l.symbol_at(rep);
        assert_eq!(s.region, KernelRegion::Text);
        assert_eq!(s.name, "replica2:text:swtch+0x4");
    }
}
