//! Physical frame management: the free-page pool, frame ownership
//! records (the `pfdat` analog), and shared-memory segments.

use std::collections::{HashMap, VecDeque};

use oscar_machine::addr::{Ppn, Vpn};

use crate::types::Pid;

/// What a frame is being used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameUse {
    /// On the free list.
    Free,
    /// Backing a private user page.
    User {
        /// Owning process.
        pid: Pid,
        /// Virtual page in that process.
        vpn: Vpn,
        /// Whether the page holds code (reallocating it later forces an
        /// I-cache flush — the source of *Inval* misses).
        text: bool,
    },
    /// Backing a shared-memory segment page.
    Shm {
        /// Segment id.
        seg: u32,
        /// Page index within the segment.
        index: u32,
    },
}

#[derive(Debug, Clone, Copy)]
struct FrameInfo {
    use_: FrameUse,
    /// The frame held code at some point since it was last I-cache
    /// flushed.
    was_code: bool,
    /// Reference count (fork shares frames copy-on-write).
    refs: u32,
}

/// Result of allocating a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameAlloc {
    /// The allocated frame.
    pub ppn: Ppn,
    /// The frame previously held code, so the I-caches must be flushed
    /// for this page before reuse.
    pub needs_icache_flush: bool,
}

/// The frame database.
#[derive(Debug)]
pub struct FrameDb {
    first: u32,
    /// Free frames bucketed by cache color (64 KB cache / 4 KB pages =
    /// 16 colors). The allocator prefers a frame whose color matches the
    /// virtual page, the classic page-coloring trick real kernels use to
    /// keep physically-indexed caches predictable.
    free: [VecDeque<Ppn>; NUM_COLORS],
    free_total: usize,
    next_color: usize,
    info: Vec<FrameInfo>,
    /// Allocation order, for page-out victim selection (FIFO).
    fifo: VecDeque<Ppn>,
    segments: HashMap<u32, Vec<Option<Ppn>>>,
}

/// Number of page colors (cache size / page size).
pub const NUM_COLORS: usize = 16;

fn color_of(ppn: Ppn) -> usize {
    (ppn.0 as usize) % NUM_COLORS
}

impl FrameDb {
    /// Serializes the complete frame state (free lists, frame info,
    /// FIFO order, shared segments; segment keys sorted for
    /// deterministic bytes).
    pub(crate) fn save(&self, w: &mut crate::snap::SnapWriter) {
        w.u32(self.first);
        for q in &self.free {
            w.usize(q.len());
            for p in q {
                w.u32(p.0);
            }
        }
        w.usize(self.next_color);
        w.usize(self.info.len());
        for fi in &self.info {
            match fi.use_ {
                FrameUse::Free => w.u8(0),
                FrameUse::User { pid, vpn, text } => {
                    w.u8(1);
                    w.u32(pid.0);
                    w.u32(vpn.0);
                    w.bool(text);
                }
                FrameUse::Shm { seg, index } => {
                    w.u8(2);
                    w.u32(seg);
                    w.u32(index);
                }
            }
            w.bool(fi.was_code);
            w.u32(fi.refs);
        }
        w.usize(self.fifo.len());
        for p in &self.fifo {
            w.u32(p.0);
        }
        let mut segs: Vec<u32> = self.segments.keys().copied().collect();
        segs.sort_unstable();
        w.usize(segs.len());
        for seg in segs {
            let pages = &self.segments[&seg];
            w.u32(seg);
            w.usize(pages.len());
            for p in pages {
                match p {
                    None => w.bool(false),
                    Some(ppn) => {
                        w.bool(true);
                        w.u32(ppn.0);
                    }
                }
            }
        }
    }

    /// Restores state written by [`FrameDb::save`] into a database
    /// constructed over the same frame range.
    pub(crate) fn load(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        use crate::snap::SnapError;
        if r.u32()? != self.first {
            return Err(SnapError::Corrupt("frame db base"));
        }
        let mut free_total = 0;
        for q in &mut self.free {
            let n = r.usize()?;
            q.clear();
            for _ in 0..n {
                q.push_back(Ppn(r.u32()?));
            }
            free_total += n;
        }
        self.free_total = free_total;
        self.next_color = r.usize()?;
        if self.next_color >= NUM_COLORS {
            return Err(SnapError::Corrupt("frame color cursor"));
        }
        if r.usize()? != self.info.len() {
            return Err(SnapError::Corrupt("frame count"));
        }
        for fi in &mut self.info {
            fi.use_ = match r.u8()? {
                0 => FrameUse::Free,
                1 => FrameUse::User {
                    pid: Pid(r.u32()?),
                    vpn: Vpn(r.u32()?),
                    text: r.bool()?,
                },
                2 => FrameUse::Shm {
                    seg: r.u32()?,
                    index: r.u32()?,
                },
                _ => return Err(SnapError::Corrupt("frame use tag")),
            };
            fi.was_code = r.bool()?;
            fi.refs = r.u32()?;
        }
        let n = r.usize()?;
        self.fifo.clear();
        for _ in 0..n {
            self.fifo.push_back(Ppn(r.u32()?));
        }
        let nsegs = r.usize()?;
        self.segments.clear();
        for _ in 0..nsegs {
            let seg = r.u32()?;
            let npages = r.usize()?;
            let mut pages = Vec::with_capacity(npages.min(1 << 20));
            for _ in 0..npages {
                pages.push(if r.bool()? { Some(Ppn(r.u32()?)) } else { None });
            }
            self.segments.insert(seg, pages);
        }
        Ok(())
    }

    /// Creates a database managing frames `[first, end)`.
    pub fn new(first: Ppn, end: Ppn) -> Self {
        let n = (end.0 - first.0) as usize;
        let mut free: [VecDeque<Ppn>; NUM_COLORS] = Default::default();
        for p in first.0..end.0 {
            free[color_of(Ppn(p))].push_back(Ppn(p));
        }
        FrameDb {
            first: first.0,
            free,
            free_total: n,
            next_color: 0,
            info: vec![
                FrameInfo {
                    use_: FrameUse::Free,
                    was_code: false,
                    refs: 0,
                };
                n
            ],
            fifo: VecDeque::new(),
            segments: HashMap::new(),
        }
    }

    fn idx(&self, ppn: Ppn) -> usize {
        debug_assert!(ppn.0 >= self.first);
        (ppn.0 - self.first) as usize
    }

    /// Frames currently free.
    pub fn free_count(&self) -> usize {
        self.free_total
    }

    /// Total managed frames.
    pub fn capacity(&self) -> usize {
        self.info.len()
    }

    /// Allocates a frame for `use_`. Returns `None` when the pool is
    /// empty (the caller must run the page-out scan first).
    pub fn alloc(&mut self, use_: FrameUse, is_code: bool) -> Option<FrameAlloc> {
        let c = self.next_color;
        self.next_color = (self.next_color + 1) % NUM_COLORS;
        self.alloc_colored(use_, is_code, c as u8)
    }

    /// Allocates a frame preferring cache color `color` (falling back to
    /// the nearest non-empty color).
    pub fn alloc_colored(
        &mut self,
        use_: FrameUse,
        is_code: bool,
        color: u8,
    ) -> Option<FrameAlloc> {
        if self.free_total == 0 {
            return None;
        }
        let want = color as usize % NUM_COLORS;
        let ppn = (0..NUM_COLORS)
            .map(|d| (want + d) % NUM_COLORS)
            .find_map(|c| self.free[c].pop_front())?;
        self.free_total -= 1;
        Some(self.install(ppn, use_, is_code))
    }

    fn install(&mut self, ppn: Ppn, use_: FrameUse, is_code: bool) -> FrameAlloc {
        let i = self.idx(ppn);
        let needs_icache_flush = self.info[i].was_code;
        self.info[i] = FrameInfo {
            use_,
            was_code: is_code,
            refs: 1,
        };
        self.fifo.push_back(ppn);
        FrameAlloc {
            ppn,
            needs_icache_flush,
        }
    }

    /// Adds a reference (fork sharing a frame copy-on-write).
    pub fn add_ref(&mut self, ppn: Ppn) {
        let i = self.idx(ppn);
        debug_assert_ne!(self.info[i].use_, FrameUse::Free);
        self.info[i].refs += 1;
    }

    /// Drops a reference; frees the frame when it reaches zero. Returns
    /// whether the frame was actually freed.
    pub fn release(&mut self, ppn: Ppn) -> bool {
        let i = self.idx(ppn);
        debug_assert_ne!(self.info[i].use_, FrameUse::Free, "double free of {ppn}");
        self.info[i].refs -= 1;
        if self.info[i].refs == 0 {
            self.info[i].use_ = FrameUse::Free;
            self.free[color_of(ppn)].push_back(ppn);
            self.free_total += 1;
            if let Some(pos) = self.fifo.iter().position(|&p| p == ppn) {
                self.fifo.remove(pos);
            }
            true
        } else {
            false
        }
    }

    /// The current use of a frame.
    pub fn use_of(&self, ppn: Ppn) -> FrameUse {
        self.info[self.idx(ppn)].use_
    }

    /// Reference count of a frame.
    pub fn refs(&self, ppn: Ppn) -> u32 {
        self.info[self.idx(ppn)].refs
    }

    /// Records that the I-caches were flushed for this frame, clearing
    /// its stale-code mark.
    pub fn note_icache_flushed(&mut self, ppn: Ppn) {
        let i = self.idx(ppn);
        self.info[i].was_code = false;
    }

    /// Picks up to `n` page-out victims in allocation (FIFO) order,
    /// skipping shared and multiply-referenced frames. The caller
    /// invalidates the owners' mappings and then [`FrameDb::release`]s
    /// them.
    pub fn pageout_victims(&mut self, n: usize) -> Vec<(Ppn, FrameUse)> {
        let mut victims = Vec::new();
        let mut rotated = 0;
        while victims.len() < n && rotated < self.fifo.len() {
            let Some(ppn) = self.fifo.pop_front() else {
                break;
            };
            let i = self.idx(ppn);
            match self.info[i].use_ {
                FrameUse::User { .. } if self.info[i].refs == 1 => {
                    victims.push((ppn, self.info[i].use_));
                    // The caller releases; keep it out of the FIFO.
                }
                FrameUse::Free => {}
                other => {
                    let _ = other;
                    self.fifo.push_back(ppn);
                    rotated += 1;
                }
            }
        }
        victims
    }

    /// Gets or creates shared segment `seg` with `pages` pages.
    pub fn segment_mut(&mut self, seg: u32, pages: u32) -> &mut Vec<Option<Ppn>> {
        self.segments
            .entry(seg)
            .or_insert_with(|| vec![None; pages as usize])
    }

    /// Looks up the frame backing `(seg, index)`, if mapped.
    pub fn segment_frame(&self, seg: u32, index: u32) -> Option<Ppn> {
        self.segments
            .get(&seg)
            .and_then(|v| v.get(index as usize).copied().flatten())
    }

    /// Records the frame backing `(seg, index)`.
    pub fn set_segment_frame(&mut self, seg: u32, index: u32, ppn: Ppn) {
        if let Some(v) = self.segments.get_mut(&seg) {
            if let Some(slot) = v.get_mut(index as usize) {
                *slot = Some(ppn);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> FrameDb {
        FrameDb::new(Ppn(100), Ppn(110))
    }

    fn user_use(pid: u32) -> FrameUse {
        FrameUse::User {
            pid: Pid(pid),
            vpn: Vpn(1),
            text: false,
        }
    }

    #[test]
    fn alloc_and_release_cycle() {
        let mut d = db();
        assert_eq!(d.free_count(), 10);
        let a = d.alloc(user_use(1), false).unwrap();
        assert_eq!(d.free_count(), 9);
        assert!(!a.needs_icache_flush);
        assert!(d.release(a.ppn));
        assert_eq!(d.free_count(), 10);
        assert_eq!(d.use_of(a.ppn), FrameUse::Free);
    }

    #[test]
    fn code_frame_reallocation_requires_flush() {
        let mut d = db();
        let a = d.alloc(user_use(1), true).unwrap();
        d.release(a.ppn);
        // Drain the pool so the code frame comes back around.
        let mut seen_flush = false;
        for _ in 0..10 {
            let f = d.alloc(user_use(2), false).unwrap();
            if f.ppn == a.ppn {
                assert!(f.needs_icache_flush);
                seen_flush = true;
                d.note_icache_flushed(f.ppn);
            }
        }
        assert!(seen_flush);
    }

    #[test]
    fn cow_refcounting() {
        let mut d = db();
        let a = d.alloc(user_use(1), false).unwrap();
        d.add_ref(a.ppn);
        assert_eq!(d.refs(a.ppn), 2);
        assert!(!d.release(a.ppn), "still referenced");
        assert!(d.release(a.ppn), "now free");
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut d = db();
        for _ in 0..10 {
            assert!(d.alloc(user_use(1), false).is_some());
        }
        assert!(d.alloc(user_use(1), false).is_none());
    }

    #[test]
    fn pageout_picks_fifo_user_victims() {
        let mut d = db();
        let a = d.alloc(user_use(1), false).unwrap();
        let b = d.alloc(user_use(2), false).unwrap();
        // A shared frame is skipped.
        let c = d.alloc(FrameUse::Shm { seg: 1, index: 0 }, false).unwrap();
        let victims = d.pageout_victims(2);
        let ppns: Vec<Ppn> = victims.iter().map(|v| v.0).collect();
        assert_eq!(ppns, vec![a.ppn, b.ppn]);
        assert!(!ppns.contains(&c.ppn));
        for (ppn, _) in victims {
            d.release(ppn);
        }
        assert_eq!(d.free_count(), 9);
    }

    #[test]
    fn shared_segments() {
        let mut d = db();
        d.segment_mut(7, 4);
        assert_eq!(d.segment_frame(7, 0), None);
        let f = d.alloc(FrameUse::Shm { seg: 7, index: 0 }, false).unwrap();
        d.set_segment_frame(7, 0, f.ppn);
        assert_eq!(d.segment_frame(7, 0), Some(f.ppn));
        assert_eq!(d.segment_frame(9, 0), None);
    }
}
