//! The user-program interface: virtual address-space conventions, user
//! micro-operations, and the [`UserTask`] trait that workload models
//! implement.

use oscar_machine::addr::{VAddr, PAGE_SIZE};
use oscar_rng::SmallRng;

use crate::types::Pid;

/// Virtual address-space conventions (segment bases). The classifier
/// uses these vpn ranges to tell user instruction pages from data pages,
/// as the paper does with TLB-derived virtual addresses.
pub mod segs {
    use oscar_machine::addr::{VAddr, Vpn};

    /// Base of the text (code) segment.
    pub const TEXT_BASE: VAddr = VAddr::new(0x0040_0000);
    /// Base of the data/heap segment.
    pub const DATA_BASE: VAddr = VAddr::new(0x1000_0000);
    /// Base of the shared-memory segment window.
    pub const SHM_BASE: VAddr = VAddr::new(0x2000_0000);
    /// Base of the (downward-growing) stack segment.
    pub const STACK_BASE: VAddr = VAddr::new(0x7fff_0000);
    /// One past the last stack page.
    pub const STACK_END: VAddr = VAddr::new(0x8000_0000);

    /// Whether a virtual page holds code.
    pub fn is_text(vpn: Vpn) -> bool {
        vpn >= TEXT_BASE.page() && vpn < DATA_BASE.page()
    }

    /// Whether a virtual page belongs to the shared-memory window.
    pub fn is_shm(vpn: Vpn) -> bool {
        vpn >= SHM_BASE.page() && vpn < STACK_BASE.page()
    }

    /// Whether a virtual page belongs to the stack.
    pub fn is_stack(vpn: Vpn) -> bool {
        vpn >= STACK_BASE.page() && vpn < STACK_END.page()
    }
}

/// Parameters of an executable image for `exec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecImage {
    /// Identity of the image file (its inode); images shared between
    /// processes (the C compiler run 8× concurrently) hit in the buffer
    /// cache.
    pub inode: u32,
    /// Text size in bytes.
    pub text_bytes: u32,
    /// Initialized-data size in bytes (also loaded from the image).
    pub data_bytes: u32,
}

impl ExecImage {
    /// Number of text pages.
    pub fn text_pages(&self) -> u32 {
        self.text_bytes.div_ceil(PAGE_SIZE as u32)
    }
}

/// A request into the kernel.
pub enum SysReq {
    /// Read `bytes` sequentially from `inode` at the process's current
    /// position for that file.
    Read {
        /// File identity.
        inode: u32,
        /// Bytes to read.
        bytes: u32,
    },
    /// Write `bytes` sequentially to `inode`.
    Write {
        /// File identity.
        inode: u32,
        /// Bytes to write.
        bytes: u32,
    },
    /// Read `bytes` from `inode` at an explicit offset (databases doing
    /// their own file management issue these).
    ReadAt {
        /// File identity.
        inode: u32,
        /// Byte offset.
        offset: u64,
        /// Bytes to read.
        bytes: u32,
    },
    /// Write `bytes` sequentially to `inode` and wait for the data to
    /// reach the disk (redo-log style synchronous commit).
    SyncWrite {
        /// File identity.
        inode: u32,
        /// Bytes to write.
        bytes: u32,
    },
    /// Write `bytes` to `inode` at an explicit offset.
    WriteAt {
        /// File identity.
        inode: u32,
        /// Byte offset.
        offset: u64,
        /// Bytes to write.
        bytes: u32,
    },
    /// Path lookup + in-core inode activation.
    Open {
        /// File identity.
        inode: u32,
        /// Path components to resolve.
        components: u32,
    },
    /// Release the file.
    Close {
        /// File identity.
        inode: u32,
    },
    /// Yield the CPU (issued by the user lock library after 20 failed
    /// spins).
    Sginap,
    /// Create a child running `child` (the model's fork+exec splits:
    /// fork clones, the child's task usually starts with `Exec`).
    Fork {
        /// The child's user program.
        child: Box<dyn UserTask>,
    },
    /// Replace this process's address space with `image`.
    Exec {
        /// The new image.
        image: ExecImage,
    },
    /// Terminate.
    Exit,
    /// Wait for a child to exit.
    Wait,
    /// Grow the heap by `pages`.
    Brk {
        /// Pages to add.
        pages: u32,
    },
    /// Attach shared segment `seg` (created on first attach).
    ShmAttach {
        /// Segment id.
        seg: u32,
        /// Segment size in pages.
        pages: u32,
    },
    /// Semaphore operation (P: delta=-1, V: delta=+1).
    SemOp {
        /// Semaphore index.
        sem: u32,
        /// Increment.
        delta: i32,
    },
    /// Read from pipe `pipe` (blocks when empty).
    PipeRead {
        /// Pipe index.
        pipe: u32,
        /// Bytes.
        bytes: u32,
    },
    /// Write to pipe `pipe` (wakes readers).
    PipeWrite {
        /// Pipe index.
        pipe: u32,
        /// Bytes.
        bytes: u32,
    },
    /// Write to the terminal via the STREAMS path.
    TtyWrite {
        /// Session (stream) index.
        stream: u32,
        /// Bytes.
        bytes: u32,
    },
    /// Sleep for `ticks` clock ticks (callout-based).
    Nap {
        /// Clock ticks.
        ticks: u32,
    },
    /// Receive pending network data (runs the network stack, which the
    /// kernel executes on CPU 1 only, as in IRIX 3.2).
    SockRecv {
        /// Bytes expected.
        bytes: u32,
    },
}

/// One user-level micro-operation, yielded by a [`UserTask`].
#[derive(Debug)]
pub enum UOp {
    /// Execute straight-line code over virtual `[cur, end)`.
    Run {
        /// Next instruction byte.
        cur: u64,
        /// One past the end.
        end: u64,
    },
    /// Execute a loop: `iters` passes over a `len`-byte body at `base`.
    RunLoop {
        /// Loop body base address.
        base: u64,
        /// Body length in bytes.
        len: u32,
        /// Iterations remaining.
        iters: u32,
        /// Byte offset within the current pass.
        off: u32,
    },
    /// One data access.
    Touch {
        /// Virtual address.
        addr: u64,
        /// Write?
        write: bool,
    },
    /// A strided data sweep over virtual `[cur, end)`.
    Sweep {
        /// Next address.
        cur: u64,
        /// One past the end.
        end: u64,
        /// Stride in bytes (0 = one block).
        stride: u32,
        /// Write?
        write: bool,
    },
    /// Pure computation.
    Compute {
        /// Cycles to burn.
        cycles: u64,
    },
    /// A pseudo-random pointer-chasing walk: `left` touches uniformly
    /// spread over `[base, base+span)` (an LCG drives the sequence, so
    /// walks are deterministic).
    Walk {
        /// Base virtual address.
        base: u64,
        /// Span in bytes.
        span: u64,
        /// Touches remaining.
        left: u32,
        /// LCG state.
        state: u64,
        /// Fraction of touches that write (0-255 scale).
        write_ratio: u8,
    },
    /// Trap into the kernel.
    Syscall(SysReq),
    /// Acquire user spin lock `lock` (in shared memory). After 20
    /// failed spins the library calls `sginap`, exactly as in the paper.
    LockAcq {
        /// User lock id.
        lock: u32,
        /// Failed spins so far (library state).
        spins: u32,
    },
    /// Release user spin lock `lock`.
    LockRel {
        /// User lock id.
        lock: u32,
    },
}

impl UOp {
    /// Straight-line execution of `len` bytes of code at `base`.
    pub fn run(base: VAddr, len: u32) -> UOp {
        UOp::Run {
            cur: base.raw(),
            end: base.raw() + len as u64,
        }
    }

    /// A loop of `iters` passes over `len` bytes at `base`.
    pub fn run_loop(base: VAddr, len: u32, iters: u32) -> UOp {
        UOp::RunLoop {
            base: base.raw(),
            len,
            iters,
            off: 0,
        }
    }

    /// A data sweep of `len` bytes from `base`.
    pub fn sweep(base: VAddr, len: u64, stride: u32, write: bool) -> UOp {
        UOp::Sweep {
            cur: base.raw(),
            end: base.raw() + len,
            stride,
            write,
        }
    }

    /// A pointer-chasing walk of `count` touches over `span` bytes at
    /// `base`.
    pub fn walk(base: VAddr, span: u64, count: u32, seed: u64) -> UOp {
        UOp::Walk {
            base: base.raw(),
            span: span.max(64),
            left: count,
            state: seed | 1,
            write_ratio: 64,
        }
    }

    /// A single data read.
    pub fn read(addr: VAddr) -> UOp {
        UOp::Touch {
            addr: addr.raw(),
            write: false,
        }
    }

    /// A single data write.
    pub fn write(addr: VAddr) -> UOp {
        UOp::Touch {
            addr: addr.raw(),
            write: true,
        }
    }
}

/// Execution context handed to a task when it is asked for its next
/// operation.
pub struct TaskEnv<'a> {
    /// Deterministic per-process randomness.
    pub rng: &'a mut SmallRng,
    /// The process's pid.
    pub pid: Pid,
    /// Current cycle time on the executing CPU.
    pub now: u64,
}

impl std::fmt::Debug for TaskEnv<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskEnv")
            .field("pid", &self.pid)
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

/// A user program: a state machine yielding user micro-operations.
///
/// Returning `None` means the program has finished; the kernel runs an
/// implicit `exit` for it.
pub trait UserTask {
    /// The next operation to execute, or `None` when done.
    fn next(&mut self, env: &mut TaskEnv<'_>) -> Option<UOp>;

    /// A short name for debugging and reports. Snapshots use it as the
    /// restore tag, so snapshottable tasks must return a unique name.
    fn name(&self) -> &'static str {
        "task"
    }

    /// Serializes this task's state into `s` and returns `true`.
    ///
    /// The default returns `false`, meaning the task does not support
    /// snapshots; attempting to snapshot a world that runs such a task
    /// panics rather than producing a corrupt image.
    fn save(&self, s: &mut crate::snap::TaskSaver<'_>) -> bool {
        let _ = s;
        false
    }
}

impl std::fmt::Debug for dyn UserTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UserTask({})", self.name())
    }
}

impl std::fmt::Debug for SysReq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SysReq::Read { inode, bytes } => write!(f, "Read(i{inode}, {bytes}B)"),
            SysReq::ReadAt {
                inode,
                offset,
                bytes,
            } => write!(f, "ReadAt(i{inode}, @{offset}, {bytes}B)"),
            SysReq::WriteAt {
                inode,
                offset,
                bytes,
            } => write!(f, "WriteAt(i{inode}, @{offset}, {bytes}B)"),
            SysReq::Write { inode, bytes } => write!(f, "Write(i{inode}, {bytes}B)"),
            SysReq::SyncWrite { inode, bytes } => write!(f, "SyncWrite(i{inode}, {bytes}B)"),
            SysReq::Open { inode, components } => write!(f, "Open(i{inode}, {components})"),
            SysReq::Close { inode } => write!(f, "Close(i{inode})"),
            SysReq::Sginap => write!(f, "Sginap"),
            SysReq::Fork { child } => write!(f, "Fork({})", child.name()),
            SysReq::Exec { image } => write!(f, "Exec({image:?})"),
            SysReq::Exit => write!(f, "Exit"),
            SysReq::Wait => write!(f, "Wait"),
            SysReq::Brk { pages } => write!(f, "Brk({pages})"),
            SysReq::ShmAttach { seg, pages } => write!(f, "ShmAttach({seg}, {pages})"),
            SysReq::SemOp { sem, delta } => write!(f, "SemOp({sem}, {delta})"),
            SysReq::PipeRead { pipe, bytes } => write!(f, "PipeRead({pipe}, {bytes}B)"),
            SysReq::PipeWrite { pipe, bytes } => write!(f, "PipeWrite({pipe}, {bytes}B)"),
            SysReq::TtyWrite { stream, bytes } => write!(f, "TtyWrite({stream}, {bytes}B)"),
            SysReq::Nap { ticks } => write!(f, "Nap({ticks})"),
            SysReq::SockRecv { bytes } => write!(f, "SockRecv({bytes}B)"),
        }
    }
}

/// A trivial task used in tests: runs a code loop and touches data, then
/// finishes.
#[derive(Debug)]
pub struct ScriptTask {
    ops: std::collections::VecDeque<UOp>,
    name: &'static str,
}

impl ScriptTask {
    /// Creates a task that plays back `ops` in order.
    pub fn new(name: &'static str, ops: Vec<UOp>) -> Self {
        ScriptTask {
            ops: ops.into(),
            name,
        }
    }
}

impl UserTask for ScriptTask {
    fn next(&mut self, _env: &mut TaskEnv<'_>) -> Option<UOp> {
        self.ops.pop_front()
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_predicates() {
        assert!(segs::is_text(segs::TEXT_BASE.page()));
        assert!(!segs::is_text(segs::DATA_BASE.page()));
        assert!(segs::is_shm(segs::SHM_BASE.page()));
        assert!(segs::is_stack(segs::STACK_BASE.page()));
        assert!(!segs::is_stack(VAddr::new(0x8000_0000).page()));
    }

    #[test]
    fn exec_image_pages() {
        let img = ExecImage {
            inode: 9,
            text_bytes: 4096 * 3 + 1,
            data_bytes: 0,
        };
        assert_eq!(img.text_pages(), 4);
    }

    #[test]
    fn script_task_plays_back() {
        let mut rng = <SmallRng as oscar_rng::SeedableRng>::seed_from_u64(1);
        let mut env = TaskEnv {
            rng: &mut rng,
            pid: Pid(1),
            now: 0,
        };
        let mut t = ScriptTask::new("t", vec![UOp::Compute { cycles: 5 }]);
        assert!(matches!(t.next(&mut env), Some(UOp::Compute { cycles: 5 })));
        assert!(t.next(&mut env).is_none());
    }

    #[test]
    fn uop_builders() {
        match UOp::run(segs::TEXT_BASE, 100) {
            UOp::Run { cur, end } => assert_eq!(end - cur, 100),
            _ => panic!(),
        }
        match UOp::run_loop(segs::TEXT_BASE, 64, 10) {
            UOp::RunLoop { len, iters, .. } => {
                assert_eq!(len, 64);
                assert_eq!(iters, 10);
            }
            _ => panic!(),
        }
    }
}
