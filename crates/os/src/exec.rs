//! Kernel execution micro-operations.
//!
//! The synthetic kernel "executes" by consuming queues of [`KOp`]
//! micro-operations: sequential instruction fetches over routine code
//! ranges (OS code is famously loop-less, which is why the paper finds
//! instruction fetches to be the largest source of OS misses), data
//! touches and sweeps over kernel structures, lock operations, escape
//! emissions, and [`KCall`] decision points that run kernel logic and may
//! push further operations.

use std::collections::VecDeque;

use oscar_machine::addr::{PAddr, BLOCK_SIZE};

use crate::instrument::OsEvent;
use crate::locks::LockId;
use crate::types::{OpClass, Pid, ProcSlot};

/// A sleep/wakeup channel (the System V `sleep()` address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Chan {
    /// Waiting for buffer-cache buffer `i`'s I/O to complete.
    Buf(usize),
    /// A reader waiting for data in pipe `i`.
    PipeData(usize),
    /// A writer waiting for space in pipe `i`.
    PipeSpace(usize),
    /// A parent waiting for any child to exit.
    Child(ProcSlot),
    /// Waiting for a callout to fire (keyed by pid).
    Timer(Pid),
    /// Waiting on user semaphore `i`.
    Sem(u32),
    /// Waiting for a (sleep-lock) in-core inode lock to be released.
    InoWait(u32),
}

/// What to do with the outgoing process at a context switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Put it back on the run queue (preemption, `sginap`).
    Requeue,
    /// Put it to sleep on a channel.
    Sleep(Chan),
    /// It has exited.
    Exit,
    /// The CPU was idle; there is no outgoing process.
    FromIdle,
}

/// How a freshly allocated user page is initialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageInit {
    /// Demand-zero: the page is block-cleared.
    Zero,
    /// Copy-on-write resolution: copied from the given source frame
    /// (raw physical page number).
    CopyFrom(u32),
    /// Mapped without initialization (text loaded separately, shared
    /// memory attach).
    None,
}

/// Sentinel buffer index for raw disk I/O with no buffer to complete
/// (page-out writes).
pub const DISK_NO_BUF: usize = usize::MAX;

/// Deferred kernel decision points, executed in queue order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KCall {
    /// Context switch: requeue/sleep/exit the current process, pick the
    /// next one, and build the dispatch frame.
    Swtch(Disposition),
    /// Tail of a context switch: pick the next process from the run
    /// queue (while `Runqlk` is held) and commit it to the CPU.
    SwtchCommit,
    /// UTLB fast path: install the PTE if valid, otherwise escalate to a
    /// full fault.
    TlbRefill {
        /// Faulting virtual page.
        vpn: u32,
        /// The faulting access was a write.
        write: bool,
    },
    /// Install a translation in the running CPU's TLB (emits the
    /// four-payload `TlbSet` escape).
    TlbInsert {
        /// Virtual page.
        vpn: u32,
        /// Physical page.
        ppn: u32,
    },
    /// Allocate (and initialize) a frame for the faulting page, pushing
    /// the page-out scan first if memory is short.
    AllocPage {
        /// Faulting virtual page.
        vpn: u32,
        /// Initialization policy.
        init: PageInit,
    },
    /// Synchronous write: mark `buf` busy and start its disk write (at
    /// run time, so no one can wait on a not-yet-submitted request).
    SyncWriteStart {
        /// Buffer index.
        buf: usize,
    },
    /// Start disk I/O for buffer `buf`.
    DiskEnqueue {
        /// Buffer index.
        buf: usize,
        /// Whether this is a write.
        write: bool,
        /// Sequential with the previous request for this file (no seek).
        seq: bool,
    },
    /// Put the current process to sleep on `chan` and switch. The sleep
    /// is *conditional*: if the awaited condition already holds (the
    /// buffer I/O completed, the callout fired), the call is a no-op —
    /// this closes the classic lost-wakeup races.
    Sleep {
        /// The channel to sleep on.
        chan: Chan,
    },
    /// Create the pending child process (fork tail).
    ForkChild,
    /// Replace the current address space (exec tail); pushes the
    /// text-load operations.
    ExecReplace {
        /// The new image.
        image: crate::user::ExecImage,
    },
    /// Load one page of the new image through the buffer cache, then
    /// chain to the next (keeps at most one buffer busy per exec).
    ExecLoad {
        /// The image being loaded.
        image: crate::user::ExecImage,
        /// The page to load now.
        page: u32,
    },
    /// Final exit bookkeeping: free pages, zombify, wake parent.
    ExitFinish,
    /// `wait`: reap a zombie child or sleep until one exits.
    WaitCheck,
    /// Apply a semaphore operation (may sleep or wake).
    SemOpApply {
        /// Semaphore index.
        sem: u32,
        /// +1 for V, -1 for P.
        delta: i32,
    },
    /// Move bytes between a pipe buffer and the process (may sleep).
    PipeXfer {
        /// Pipe index.
        pipe: usize,
        /// Bytes to transfer.
        bytes: u32,
        /// True when writing into the pipe.
        write: bool,
    },
    /// Arm a callout that wakes this process after `ticks` clock ticks,
    /// then sleep on it.
    NapArm {
        /// Clock ticks until wakeup.
        ticks: u32,
    },
    /// Clock-tick bookkeeping: quantum accounting, callout scan results.
    ClockTick,
    /// Periodic scheduler priority recomputation (`schedcpu`).
    SchedCpuScan,
    /// Disk interrupt tail: complete the head request, wake sleepers,
    /// start the next queued request.
    DiskIntrDone,
    /// Attach shared-memory segment pages to the current page table.
    ShmMap {
        /// Segment id.
        seg: u32,
        /// Pages in the segment.
        pages: u32,
    },
}

/// One kernel micro-operation.
#[derive(Debug)]
pub enum KOp {
    /// Sequential instruction fetch over physical `[cur, end)`.
    IFetch {
        /// Next byte to fetch.
        cur: u64,
        /// One past the last byte.
        end: u64,
    },
    /// A single data access.
    Data {
        /// Physical address.
        addr: u64,
        /// Write?
        write: bool,
    },
    /// A strided data sweep over physical `[cur, end)`.
    DSweep {
        /// Next address.
        cur: u64,
        /// One past the end.
        end: u64,
        /// Stride in bytes (0 is treated as one block).
        stride: u32,
        /// Write?
        write: bool,
    },
    /// Pure computation (register-only work).
    Compute {
        /// Cycles to burn.
        cycles: u64,
    },
    /// Emit an instrumentation event as an escape sequence.
    Escape(OsEvent),
    /// Spin until the lock is acquired.
    Lock(LockId),
    /// Release the lock.
    Unlock(LockId),
    /// A deferred kernel decision point.
    Call(KCall),
}

/// Number of [`KOp`] kinds, sizing the kernel-probe counters.
pub const NUM_KOP_KINDS: usize = 8;

impl KOp {
    /// Stable labels for the kinds, indexed by [`KOp::kind_index`]
    /// (metric keys `kernel.kop.<label>`).
    pub const KIND_LABELS: [&'static str; NUM_KOP_KINDS] = [
        "ifetch", "data", "dsweep", "compute", "escape", "lock", "unlock", "call",
    ];

    /// Index of this op's kind into a [`NUM_KOP_KINDS`]-sized array.
    pub fn kind_index(&self) -> usize {
        match self {
            KOp::IFetch { .. } => 0,
            KOp::Data { .. } => 1,
            KOp::DSweep { .. } => 2,
            KOp::Compute { .. } => 3,
            KOp::Escape(_) => 4,
            KOp::Lock(_) => 5,
            KOp::Unlock(_) => 6,
            KOp::Call(_) => 7,
        }
    }

    /// An instruction-fetch sweep over a whole routine window.
    pub fn fetch(base: PAddr, len: u32) -> KOp {
        KOp::IFetch {
            cur: base.raw(),
            end: base.raw() + len as u64,
        }
    }

    /// A data sweep of `len` bytes from `base` at the given stride.
    pub fn sweep(base: PAddr, len: u64, stride: u32, write: bool) -> KOp {
        KOp::DSweep {
            cur: base.raw(),
            end: base.raw() + len,
            stride,
            write,
        }
    }

    /// A single read.
    pub fn read(addr: PAddr) -> KOp {
        KOp::Data {
            addr: addr.raw(),
            write: false,
        }
    }

    /// A single write.
    pub fn write(addr: PAddr) -> KOp {
        KOp::Data {
            addr: addr.raw(),
            write: true,
        }
    }
}

/// A kernel activation frame: a queue of micro-operations plus the
/// operation class it is accounted to.
#[derive(Debug)]
pub struct KFrame {
    /// Remaining operations.
    pub ops: VecDeque<KOp>,
    /// Functional class of this activation (Figure 9 accounting).
    pub class: OpClass,
}

impl KFrame {
    /// Creates a frame from operations.
    pub fn new(class: OpClass, ops: Vec<KOp>) -> Self {
        KFrame {
            ops: ops.into(),
            class,
        }
    }

    /// Pushes operations to run *next*, before everything already
    /// queued (used by `KCall` handlers to expand in place).
    pub fn push_front_ops(&mut self, ops: Vec<KOp>) {
        for op in ops.into_iter().rev() {
            self.ops.push_front(op);
        }
    }

    /// Appends operations at the back.
    pub fn push_back_ops(&mut self, ops: Vec<KOp>) {
        self.ops.extend(ops);
    }
}

/// Advance amount for one executor step of a sweep/fetch op.
pub(crate) fn sweep_step(cur: u64, stride: u32) -> u64 {
    let s = if stride == 0 {
        BLOCK_SIZE
    } else {
        stride as u64
    };
    cur + s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kframe_push_front_preserves_order() {
        let mut f = KFrame::new(OpClass::IoSyscall, vec![KOp::Compute { cycles: 1 }]);
        f.push_front_ops(vec![
            KOp::Compute { cycles: 10 },
            KOp::Compute { cycles: 20 },
        ]);
        let cycles: Vec<u64> = f
            .ops
            .iter()
            .map(|op| match op {
                KOp::Compute { cycles } => *cycles,
                _ => panic!(),
            })
            .collect();
        assert_eq!(cycles, vec![10, 20, 1]);
    }

    #[test]
    fn helpers_build_expected_ranges() {
        let op = KOp::fetch(PAddr::new(0x100), 64);
        match op {
            KOp::IFetch { cur, end } => {
                assert_eq!(cur, 0x100);
                assert_eq!(end, 0x140);
            }
            _ => panic!(),
        }
        match KOp::sweep(PAddr::new(0x200), 32, 16, true) {
            KOp::DSweep {
                cur,
                end,
                stride,
                write,
            } => {
                assert_eq!((cur, end, stride, write), (0x200, 0x220, 16, true));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn sweep_step_treats_zero_stride_as_block() {
        assert_eq!(sweep_step(0, 0), 16);
        assert_eq!(sweep_step(0, 4), 4);
    }
}
