//! OS instrumentation events and the escape-reference encoding.
//!
//! The paper's key measurement trick (Section 2.2): the OS transfers
//! events to the address trace by issuing *uncached byte reads of odd
//! physical addresses*. An event is one read of an opcode address inside
//! a reserved range where only OS code lives, followed by zero or more
//! payload reads whose addresses are `(value << 1) | 1`. Payloads are
//! recognized *positionally* — the next N odd uncached reads by the same
//! CPU — so they may land anywhere in the address space, exactly as in
//! the paper. Instruction misses interleaved with an escape sequence
//! cannot be confused with it because code addresses are even.

use oscar_machine::addr::PAddr;

use crate::layout::Layout;
use crate::types::{AttrCtx, OpClass};

/// Kind of a block operation, for [`OsEvent::BlockOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockOpKind {
    /// `bcopy`: block copy.
    Copy,
    /// `bzero`: block clear.
    Clear,
}

impl BlockOpKind {
    fn code(self) -> u32 {
        match self {
            BlockOpKind::Copy => 0,
            BlockOpKind::Clear => 1,
        }
    }

    fn from_code(c: u32) -> Option<Self> {
        match c {
            0 => Some(BlockOpKind::Copy),
            1 => Some(BlockOpKind::Clear),
            _ => None,
        }
    }
}

/// An instrumentation event the OS transfers to the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OsEvent {
    /// Tracing starts; the kernel follows this with TLB-dump and
    /// pid-dump events describing machine state, as the paper's system
    /// call does.
    TraceStart,
    /// The CPU enters the OS for an operation of the given class.
    EnterOs(OpClass),
    /// The CPU leaves the OS.
    ExitOs,
    /// The CPU enters the kernel idle loop.
    EnterIdle,
    /// The CPU leaves the idle loop.
    ExitIdle,
    /// The process running on this CPU changed.
    PidChange {
        /// New pid (`u32::MAX` encodes "none").
        pid: u32,
    },
    /// A TLB entry was written (index, virtual page, physical page,
    /// owning pid) — the paper's four-payload example.
    TlbSet {
        /// TLB slot index.
        index: u32,
        /// Virtual page number installed.
        vpn: u32,
        /// Physical page number installed.
        ppn: u32,
        /// Owning process.
        pid: u32,
    },
    /// The CPU enters an attributed kernel context (run-queue
    /// management, block copy, ...).
    CtxEnter(AttrCtx),
    /// The CPU leaves the innermost attributed context.
    CtxExit,
    /// A block operation of `bytes` bytes starts (drives Table 7).
    BlockOp {
        /// Copy or clear.
        kind: BlockOpKind,
        /// Operation size in bytes.
        bytes: u32,
    },
    /// The OS invalidated all I-cache lines of a physical page
    /// (code-page reallocation; the source of *Inval* misses).
    IcacheFlush {
        /// The flushed physical page.
        ppn: u32,
    },
    /// Refines the operation class of the current invocation (a TLB
    /// fault is classified cheap/expensive only once handling knows).
    OpReclass(OpClass),
    /// The current OS operation ends (paired with [`OsEvent::EnterOs`];
    /// nested operations nest their pairs).
    OpEnd,
}

/// Number of distinct escape opcodes.
pub const NUM_OPCODES: u32 = 19;

/// A stable human-readable name for an escape opcode, for metric keys
/// (`kernel.escape.<label>`) and trace tooling. Unknown opcodes map to
/// `"unknown"`.
pub fn opcode_label(opcode: u32) -> &'static str {
    match opcode {
        OP_TRACE_START => "trace-start",
        op if (OP_ENTER_OS_BASE..OP_ENTER_OS_BASE + 7).contains(&op) => {
            match OpClass::from_code(op - OP_ENTER_OS_BASE) {
                Some(c) => c.label(),
                None => "unknown",
            }
        }
        OP_EXIT_OS => "exit-os",
        OP_ENTER_IDLE => "enter-idle",
        OP_EXIT_IDLE => "exit-idle",
        OP_PID_CHANGE => "pid-change",
        OP_TLB_SET => "tlb-set",
        OP_CTX_ENTER => "ctx-enter",
        OP_CTX_EXIT => "ctx-exit",
        OP_BLOCK_OP => "block-op",
        OP_ICACHE_FLUSH => "icache-flush",
        OP_RECLASS => "op-reclass",
        OP_OP_END => "op-end",
        _ => "unknown",
    }
}

const OP_TRACE_START: u32 = 0;
const OP_ENTER_OS_BASE: u32 = 1; // ..=7, one per OpClass
const OP_EXIT_OS: u32 = 8;
const OP_ENTER_IDLE: u32 = 9;
const OP_EXIT_IDLE: u32 = 10;
const OP_PID_CHANGE: u32 = 11;
const OP_TLB_SET: u32 = 12;
const OP_CTX_ENTER: u32 = 13;
const OP_CTX_EXIT: u32 = 14;
const OP_BLOCK_OP: u32 = 15;
const OP_ICACHE_FLUSH: u32 = 16;
const OP_RECLASS: u32 = 17;
const OP_OP_END: u32 = 18;

impl OsEvent {
    /// The opcode of this event.
    pub fn opcode(&self) -> u32 {
        match self {
            OsEvent::TraceStart => OP_TRACE_START,
            OsEvent::EnterOs(c) => OP_ENTER_OS_BASE + c.code(),
            OsEvent::ExitOs => OP_EXIT_OS,
            OsEvent::EnterIdle => OP_ENTER_IDLE,
            OsEvent::ExitIdle => OP_EXIT_IDLE,
            OsEvent::PidChange { .. } => OP_PID_CHANGE,
            OsEvent::TlbSet { .. } => OP_TLB_SET,
            OsEvent::CtxEnter(_) => OP_CTX_ENTER,
            OsEvent::CtxExit => OP_CTX_EXIT,
            OsEvent::BlockOp { .. } => OP_BLOCK_OP,
            OsEvent::IcacheFlush { .. } => OP_ICACHE_FLUSH,
            OsEvent::OpReclass(_) => OP_RECLASS,
            OsEvent::OpEnd => OP_OP_END,
        }
    }

    /// Number of payload reads that follow an opcode.
    pub fn payload_count(opcode: u32) -> usize {
        match opcode {
            OP_PID_CHANGE | OP_CTX_ENTER | OP_ICACHE_FLUSH | OP_RECLASS => 1,
            OP_BLOCK_OP => 2,
            OP_TLB_SET => 4,
            _ => 0,
        }
    }

    /// Physical address whose uncached read signals `opcode`.
    pub fn opcode_addr(opcode: u32) -> PAddr {
        debug_assert!(opcode < NUM_OPCODES);
        PAddr::new(Layout::ESCAPE_BASE + (opcode as u64) * 2 + 1)
    }

    /// Physical address encoding one payload value: the value shifted
    /// left one bit with the least significant bit set, per the paper.
    pub fn payload_addr(value: u32) -> PAddr {
        PAddr::new(((value as u64) << 1) | 1)
    }

    /// Decodes an opcode from an escape-range address.
    pub fn decode_opcode(paddr: PAddr) -> Option<u32> {
        let a = paddr.raw();
        if !paddr.is_odd() || a < Layout::ESCAPE_BASE {
            return None;
        }
        let op = (a - Layout::ESCAPE_BASE) / 2;
        if (a - Layout::ESCAPE_BASE) % 2 == 1 && op < NUM_OPCODES as u64 {
            Some(op as u32)
        } else {
            None
        }
    }

    /// Decodes a payload value from its address.
    pub fn decode_payload(paddr: PAddr) -> u32 {
        debug_assert!(paddr.is_odd());
        (paddr.raw() >> 1) as u32
    }

    /// The full escape sequence (opcode address, then payload addresses)
    /// that transfers this event to the trace.
    pub fn encode(&self) -> Vec<PAddr> {
        let mut seq = vec![Self::opcode_addr(self.opcode())];
        match *self {
            OsEvent::PidChange { pid } => seq.push(Self::payload_addr(pid)),
            OsEvent::TlbSet {
                index,
                vpn,
                ppn,
                pid,
            } => {
                seq.push(Self::payload_addr(index));
                seq.push(Self::payload_addr(vpn));
                seq.push(Self::payload_addr(ppn));
                seq.push(Self::payload_addr(pid));
            }
            OsEvent::CtxEnter(ctx) => seq.push(Self::payload_addr(ctx.code())),
            OsEvent::BlockOp { kind, bytes } => {
                seq.push(Self::payload_addr(kind.code()));
                seq.push(Self::payload_addr(bytes));
            }
            OsEvent::IcacheFlush { ppn } => seq.push(Self::payload_addr(ppn)),
            OsEvent::OpReclass(c) => seq.push(Self::payload_addr(c.code())),
            _ => {}
        }
        seq
    }

    /// Reassembles an event from its opcode and decoded payload values.
    /// Returns `None` for malformed payloads.
    pub fn decode(opcode: u32, payloads: &[u32]) -> Option<OsEvent> {
        if payloads.len() != Self::payload_count(opcode) {
            return None;
        }
        Some(match opcode {
            OP_TRACE_START => OsEvent::TraceStart,
            op if (OP_ENTER_OS_BASE..OP_ENTER_OS_BASE + 7).contains(&op) => {
                OsEvent::EnterOs(OpClass::from_code(op - OP_ENTER_OS_BASE)?)
            }
            OP_EXIT_OS => OsEvent::ExitOs,
            OP_ENTER_IDLE => OsEvent::EnterIdle,
            OP_EXIT_IDLE => OsEvent::ExitIdle,
            OP_PID_CHANGE => OsEvent::PidChange { pid: payloads[0] },
            OP_TLB_SET => OsEvent::TlbSet {
                index: payloads[0],
                vpn: payloads[1],
                ppn: payloads[2],
                pid: payloads[3],
            },
            OP_CTX_ENTER => OsEvent::CtxEnter(AttrCtx::from_code(payloads[0])?),
            OP_CTX_EXIT => OsEvent::CtxExit,
            OP_BLOCK_OP => OsEvent::BlockOp {
                kind: BlockOpKind::from_code(payloads[0])?,
                bytes: payloads[1],
            },
            OP_ICACHE_FLUSH => OsEvent::IcacheFlush { ppn: payloads[0] },
            OP_RECLASS => OsEvent::OpReclass(OpClass::from_code(payloads[0])?),
            OP_OP_END => OsEvent::OpEnd,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ev: OsEvent) {
        let seq = ev.encode();
        let opcode = OsEvent::decode_opcode(seq[0]).expect("opcode decodes");
        assert_eq!(opcode, ev.opcode());
        assert_eq!(seq.len() - 1, OsEvent::payload_count(opcode));
        let payloads: Vec<u32> = seq[1..]
            .iter()
            .map(|&a| OsEvent::decode_payload(a))
            .collect();
        assert_eq!(OsEvent::decode(opcode, &payloads), Some(ev));
    }

    #[test]
    fn all_events_roundtrip() {
        roundtrip(OsEvent::TraceStart);
        for c in OpClass::ALL {
            roundtrip(OsEvent::EnterOs(c));
            roundtrip(OsEvent::OpReclass(c));
        }
        roundtrip(OsEvent::ExitOs);
        roundtrip(OsEvent::EnterIdle);
        roundtrip(OsEvent::ExitIdle);
        roundtrip(OsEvent::PidChange { pid: 1234 });
        roundtrip(OsEvent::PidChange { pid: u32::MAX });
        roundtrip(OsEvent::TlbSet {
            index: 63,
            vpn: 0x7fff,
            ppn: 0x1fff,
            pid: 77,
        });
        for ctx in AttrCtx::ALL {
            roundtrip(OsEvent::CtxEnter(ctx));
        }
        roundtrip(OsEvent::CtxExit);
        roundtrip(OsEvent::BlockOp {
            kind: BlockOpKind::Copy,
            bytes: 4096,
        });
        roundtrip(OsEvent::BlockOp {
            kind: BlockOpKind::Clear,
            bytes: 300,
        });
        roundtrip(OsEvent::IcacheFlush { ppn: 8191 });
        roundtrip(OsEvent::OpEnd);
    }

    #[test]
    fn every_escape_address_is_odd() {
        let events = [
            OsEvent::TraceStart,
            OsEvent::EnterOs(OpClass::IoSyscall),
            OsEvent::TlbSet {
                index: 1,
                vpn: 2,
                ppn: 3,
                pid: 4,
            },
            OsEvent::BlockOp {
                kind: BlockOpKind::Clear,
                bytes: 4096,
            },
        ];
        for ev in events {
            for addr in ev.encode() {
                assert!(addr.is_odd(), "{addr} must be odd");
            }
        }
    }

    #[test]
    fn opcode_addresses_live_in_reserved_range() {
        for op in 0..NUM_OPCODES {
            let a = OsEvent::opcode_addr(op);
            assert!(a.raw() >= Layout::ESCAPE_BASE);
            assert_eq!(OsEvent::decode_opcode(a), Some(op));
        }
    }

    #[test]
    fn even_and_out_of_range_addresses_are_not_opcodes() {
        assert_eq!(OsEvent::decode_opcode(PAddr::new(0x100)), None);
        assert_eq!(
            OsEvent::decode_opcode(PAddr::new(Layout::ESCAPE_BASE)),
            None,
            "even address in range"
        );
        assert_eq!(
            OsEvent::decode_opcode(PAddr::new(Layout::ESCAPE_BASE + 2 * NUM_OPCODES as u64 + 1)),
            None,
            "beyond opcode range"
        );
        // A payload for a small value is odd and *below* the range.
        assert_eq!(OsEvent::decode_opcode(OsEvent::payload_addr(5)), None);
    }

    #[test]
    fn opcode_labels_are_stable_and_distinct() {
        let labels: std::collections::HashSet<_> = (0..NUM_OPCODES).map(opcode_label).collect();
        assert_eq!(labels.len(), NUM_OPCODES as usize);
        assert_eq!(opcode_label(OP_TLB_SET), "tlb-set");
        assert_eq!(
            opcode_label(OP_ENTER_OS_BASE),
            OpClass::from_code(0).unwrap().label()
        );
        assert_eq!(opcode_label(999), "unknown");
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert_eq!(OsEvent::decode(OP_TLB_SET, &[1, 2, 3]), None);
        assert_eq!(OsEvent::decode(OP_CTX_ENTER, &[99]), None);
        assert_eq!(OsEvent::decode(999, &[]), None);
    }
}
