//! The *Oracle* workload: a scaled-down TP1 transaction benchmark — 10
//! branches, 100 tellers, 10,000 accounts, sized to fit in memory, as
//! in the paper. Server processes share an SGA-like buffer pool in
//! shared memory, manage their own file activity with positional reads
//! and writes (which is why the paper's expensive-TLB activity folds
//! into the I/O-syscall category for Oracle), guard hot rows with
//! user-level latches, and append to a redo log.

use oscar_os::snap::{SnapError, TaskRestorer, TaskSaver};
use oscar_os::user::{SysReq, TaskEnv, UOp, UserTask};
use oscar_rng::Rng;

use crate::common::{inodes, oracle_image, shm_at, text_at};

/// TP1 branches (paper: 10).
pub const BRANCHES: u64 = 10;
/// TP1 tellers (paper: 100).
pub const TELLERS: u64 = 100;
/// TP1 accounts (paper: 10,000).
pub const ACCOUNTS: u64 = 10_000;
/// Concurrent server processes.
pub const SERVERS: u32 = 12;
/// Shared segment id of the SGA.
pub const SGA_SEG: u32 = 1;
/// SGA size in pages (row caches + buffer pool).
pub const SGA_PAGES: u32 = 1000;
/// User-lock id base for per-branch latches.
pub const BRANCH_LATCH_BASE: u32 = 100;
/// User-lock id of the redo-log latch.
pub const LOG_LATCH: u32 = 99;
/// Semaphore used for commit signalling.
pub const COMMIT_SEM: u32 = 7;

const ROW_BYTES: u64 = 100;
/// SGA layout: branches, tellers, accounts, then the block buffer pool.
const TELLER_OFF: u64 = BRANCHES * ROW_BYTES;
const ACCOUNT_OFF: u64 = TELLER_OFF + TELLERS * ROW_BYTES;
const POOL_OFF: u64 = ACCOUNT_OFF + ACCOUNTS * ROW_BYTES;
const POOL_BYTES: u64 = 2 * 1024 * 1024;

/// The Oracle master: attaches the SGA, forks the servers, waits.
#[derive(Debug)]
pub struct OracleMaster {
    forked: u32,
    state: MasterState,
    miss_pct: u32,
    file_blocks: u64,
    servers: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MasterState {
    Exec,
    Attach,
    Warm { page: u32 },
    Fork,
    Wait,
}

impl OracleMaster {
    /// A master with the default server count and the paper's scaled
    /// (in-memory) database.
    pub fn new() -> Self {
        OracleMaster {
            forked: 0,
            state: MasterState::Exec,
            miss_pct: 15,
            file_blocks: 256,
            servers: SERVERS,
        }
    }

    /// A master forking `servers` server processes instead of the
    /// paper's [`SERVERS`] (the scalability study forks three per CPU,
    /// preserving the paper's ratio on the 4-CPU machine).
    pub fn with_servers(servers: u32) -> Self {
        OracleMaster {
            servers: servers.max(1),
            ..Self::new()
        }
    }

    /// A master for the standard-sized TP1 database, which does not fit
    /// in memory: most account lookups read the (much larger) data
    /// files. The paper ran this variant and found the OS-miss
    /// characteristics qualitatively unchanged; see the
    /// `oracle_standard_size` test.
    pub fn standard_size() -> Self {
        OracleMaster {
            forked: 0,
            state: MasterState::Exec,
            miss_pct: 70,
            file_blocks: 4096,
            servers: SERVERS,
        }
    }
}

impl Default for OracleMaster {
    fn default() -> Self {
        Self::new()
    }
}

impl UserTask for OracleMaster {
    fn next(&mut self, _env: &mut TaskEnv<'_>) -> Option<UOp> {
        match self.state {
            MasterState::Exec => {
                self.state = MasterState::Attach;
                Some(UOp::Syscall(SysReq::Exec {
                    image: oracle_image(),
                }))
            }
            MasterState::Attach => {
                self.state = MasterState::Warm { page: 0 };
                Some(UOp::Syscall(SysReq::ShmAttach {
                    seg: SGA_SEG,
                    pages: SGA_PAGES,
                }))
            }
            MasterState::Warm { page } => {
                // Pre-touch the row caches so the database "manages its
                // own pages" (the paper's observation) from the start.
                let warm_pages = (POOL_OFF / 4096) as u32 + 8;
                if page >= warm_pages {
                    self.state = MasterState::Fork;
                    return Some(UOp::Compute { cycles: 2000 });
                }
                self.state = MasterState::Warm { page: page + 1 };
                Some(UOp::write(shm_at(SGA_SEG, page as u64 * 4096)))
            }
            MasterState::Fork => {
                if self.forked < self.servers {
                    let id = self.forked;
                    self.forked += 1;
                    Some(UOp::Syscall(SysReq::Fork {
                        child: Box::new(OracleServer::with_database(
                            id,
                            self.miss_pct,
                            self.file_blocks,
                        )),
                    }))
                } else {
                    self.state = MasterState::Wait;
                    Some(UOp::Syscall(SysReq::Wait))
                }
            }
            MasterState::Wait => Some(UOp::Syscall(SysReq::Wait)),
        }
    }

    fn name(&self) -> &'static str {
        "oracle"
    }

    fn save(&self, s: &mut TaskSaver<'_>) -> bool {
        s.u32(self.forked);
        match self.state {
            MasterState::Exec => s.u8(0),
            MasterState::Attach => s.u8(1),
            MasterState::Warm { page } => {
                s.u8(2);
                s.u32(page);
            }
            MasterState::Fork => s.u8(3),
            MasterState::Wait => s.u8(4),
        }
        s.u32(self.miss_pct);
        s.u64(self.file_blocks);
        s.u32(self.servers);
        true
    }
}

pub(crate) fn restore_master(r: &mut TaskRestorer<'_, '_>) -> Result<Box<dyn UserTask>, SnapError> {
    let forked = r.u32()?;
    let state = match r.u8()? {
        0 => MasterState::Exec,
        1 => MasterState::Attach,
        2 => MasterState::Warm { page: r.u32()? },
        3 => MasterState::Fork,
        4 => MasterState::Wait,
        _ => return Err(SnapError::Corrupt("oracle master state")),
    };
    let miss_pct = r.u32()?;
    let file_blocks = r.u64()?;
    let servers = r.u32()?;
    Ok(Box::new(OracleMaster {
        forked,
        state,
        miss_pct,
        file_blocks,
        servers,
    }))
}

/// One Oracle server process executing TP1 transactions forever.
#[derive(Debug)]
pub struct OracleServer {
    /// Server number (used to decorrelate per-server behaviour in
    /// future extensions; kept for API completeness).
    pub id: u32,
    state: ServerState,
    txns: u64,
    cur_branch: u32,
    /// Probability (percent) that an account lookup misses the SGA and
    /// reads the data file. 15 for the paper's scaled in-memory
    /// benchmark; much higher for the standard-sized database that does
    /// not fit (the paper ran that variant too and found the OS-miss
    /// character unchanged).
    miss_pct: u32,
    /// Number of 4 KB blocks in the data files (larger for the
    /// standard-sized database).
    file_blocks: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerState {
    Attach,
    Begin,
    Parse,
    AccountLookup,
    AccountMiss,
    AccountTouch,
    TellerUpdate,
    BranchLatch,
    BranchUpdate,
    BranchUnlatch,
    HistoryInsert,
    LogLatch,
    RedoCopy,
    LogWrite,
    LogUnlatch,
    Commit,
    CommitSignal,
}

impl OracleServer {
    /// Server number `id`, with the scaled (in-memory) database.
    pub fn new(id: u32) -> Self {
        Self::with_database(id, 15, 256)
    }

    /// Server number `id` against a database with the given SGA miss
    /// probability (percent) and data-file size in blocks.
    pub fn with_database(id: u32, miss_pct: u32, file_blocks: u64) -> Self {
        OracleServer {
            id,
            state: ServerState::Attach,
            txns: 0,
            cur_branch: 0,
            miss_pct: miss_pct.min(100),
            file_blocks: file_blocks.max(4),
        }
    }

    /// Transactions completed so far.
    pub fn transactions(&self) -> u64 {
        self.txns
    }
}

impl UserTask for OracleServer {
    fn next(&mut self, env: &mut TaskEnv<'_>) -> Option<UOp> {
        use ServerState::*;
        match self.state {
            Attach => {
                self.state = Begin;
                Some(UOp::Syscall(SysReq::ShmAttach {
                    seg: SGA_SEG,
                    pages: SGA_PAGES,
                }))
            }
            Begin => {
                self.state = Parse;
                // SQL parse/plan: loops over the server's big text
                // working set (the paper: database code working set is
                // large, so Dispap dominates its OS I-misses).
                let off = env.rng.gen_range(0..34u64) * 16 * 1024;
                let body = env.rng.gen_range(4..20u32) * 1024;
                Some(UOp::run_loop(text_at(off), body, env.rng.gen_range(8..24)))
            }
            Parse => {
                self.state = AccountLookup;
                // Row-cache and buffer-pool probes: a pointer-chasing
                // walk across the SGA (hash chains, LRU lists, block
                // headers) — the database's large data working set.
                Some(UOp::walk(
                    // Hot pool metadata (hash chains, LRU headers):
                    // large enough to thrash the L2, small enough that
                    // the TLB mostly holds it.
                    shm_at(SGA_SEG, POOL_OFF),
                    192 * 1024,
                    env.rng.gen_range(120..400),
                    env.rng.gen(),
                ))
            }
            AccountLookup => {
                // Account blocks missing the SGA pool go to the data
                // file with a positional read (15% for the scaled
                // benchmark; most lookups for the standard-sized one).
                if env.rng.gen_ratio(self.miss_pct, 100) {
                    self.state = AccountMiss;
                    let blk = env.rng.gen_range(0..self.file_blocks);
                    Some(UOp::Syscall(SysReq::ReadAt {
                        inode: inodes::DB_BASE + (blk % 4) as u32,
                        offset: blk * 4096,
                        bytes: 2048,
                    }))
                } else {
                    self.state = AccountTouch;
                    Some(UOp::Compute { cycles: 300 })
                }
            }
            AccountMiss => {
                self.state = AccountTouch;
                // Install the block into the pool.
                let slot = env.rng.gen_range(0..POOL_BYTES / 4096);
                Some(UOp::sweep(
                    shm_at(SGA_SEG, POOL_OFF + slot * 4096),
                    2048,
                    64,
                    true,
                ))
            }
            AccountTouch => {
                self.state = TellerUpdate;
                let acct = env.rng.gen_range(0..ACCOUNTS);
                Some(UOp::write(shm_at(SGA_SEG, ACCOUNT_OFF + acct * ROW_BYTES)))
            }
            TellerUpdate => {
                self.state = BranchLatch;
                let teller = env.rng.gen_range(0..TELLERS);
                Some(UOp::write(shm_at(SGA_SEG, TELLER_OFF + teller * ROW_BYTES)))
            }
            BranchLatch => {
                self.state = BranchUpdate;
                self.cur_branch = env.rng.gen_range(0..BRANCHES) as u32;
                Some(UOp::LockAcq {
                    lock: BRANCH_LATCH_BASE + self.cur_branch,
                    spins: 0,
                })
            }
            BranchUpdate => {
                self.state = BranchUnlatch;
                // The ten branch rows are the classic TP1 hot spots.
                Some(UOp::write(shm_at(
                    SGA_SEG,
                    self.cur_branch as u64 * ROW_BYTES,
                )))
            }
            BranchUnlatch => {
                self.state = HistoryInsert;
                Some(UOp::LockRel {
                    lock: BRANCH_LATCH_BASE + self.cur_branch,
                })
            }
            HistoryInsert => {
                self.state = LogLatch;
                let slot = (self.txns * 64) % (64 * 1024);
                Some(UOp::sweep(
                    shm_at(SGA_SEG, POOL_OFF + POOL_BYTES + slot),
                    64,
                    16,
                    true,
                ))
            }
            LogLatch => {
                self.state = RedoCopy;
                Some(UOp::LockAcq {
                    lock: LOG_LATCH,
                    spins: 0,
                })
            }
            RedoCopy => {
                // Copy the redo record into the shared log buffer while
                // holding the latch (fast; the disk write happens after
                // release, group-committed).
                self.state = LogUnlatch;
                let slot = (self.txns * 256) % (48 * 1024);
                Some(UOp::sweep(
                    shm_at(SGA_SEG, POOL_OFF + POOL_BYTES + 64 * 1024 + slot),
                    256,
                    16,
                    true,
                ))
            }
            LogUnlatch => {
                self.state = LogWrite;
                Some(UOp::LockRel { lock: LOG_LATCH })
            }
            LogWrite => {
                self.state = Commit;
                if self.txns.is_multiple_of(6) {
                    // Group commit: flush the accumulated redo and wait
                    // for the platter, as a durable commit must.
                    Some(UOp::Syscall(SysReq::SyncWrite {
                        inode: inodes::DB_LOG,
                        bytes: env.rng.gen_range(2..5) * 512,
                    }))
                } else {
                    Some(UOp::Compute { cycles: 400 })
                }
            }
            Commit => {
                self.txns += 1;
                // Every few transactions, signal the commit semaphore.
                if self.txns.is_multiple_of(4) {
                    self.state = CommitSignal;
                    Some(UOp::Syscall(SysReq::SemOp {
                        sem: COMMIT_SEM,
                        delta: 1,
                    }))
                } else {
                    self.state = Begin;
                    Some(UOp::Compute {
                        cycles: env.rng.gen_range(2000..6000),
                    })
                }
            }
            CommitSignal => {
                self.state = Begin;
                Some(UOp::Compute {
                    cycles: env.rng.gen_range(500..2000),
                })
            }
        }
    }

    fn name(&self) -> &'static str {
        "oracle-server"
    }

    fn save(&self, s: &mut TaskSaver<'_>) -> bool {
        use ServerState::*;
        s.u32(self.id);
        s.u8(match self.state {
            Attach => 0,
            Begin => 1,
            Parse => 2,
            AccountLookup => 3,
            AccountMiss => 4,
            AccountTouch => 5,
            TellerUpdate => 6,
            BranchLatch => 7,
            BranchUpdate => 8,
            BranchUnlatch => 9,
            HistoryInsert => 10,
            LogLatch => 11,
            RedoCopy => 12,
            LogWrite => 13,
            LogUnlatch => 14,
            Commit => 15,
            CommitSignal => 16,
        });
        s.u64(self.txns);
        s.u32(self.cur_branch);
        s.u32(self.miss_pct);
        s.u64(self.file_blocks);
        true
    }
}

pub(crate) fn restore_server(r: &mut TaskRestorer<'_, '_>) -> Result<Box<dyn UserTask>, SnapError> {
    use ServerState::*;
    let id = r.u32()?;
    let state = match r.u8()? {
        0 => Attach,
        1 => Begin,
        2 => Parse,
        3 => AccountLookup,
        4 => AccountMiss,
        5 => AccountTouch,
        6 => TellerUpdate,
        7 => BranchLatch,
        8 => BranchUpdate,
        9 => BranchUnlatch,
        10 => HistoryInsert,
        11 => LogLatch,
        12 => RedoCopy,
        13 => LogWrite,
        14 => LogUnlatch,
        15 => Commit,
        16 => CommitSignal,
        _ => return Err(SnapError::Corrupt("oracle server state")),
    };
    let txns = r.u64()?;
    let cur_branch = r.u32()?;
    let miss_pct = r.u32()?;
    let file_blocks = r.u64()?;
    Ok(Box::new(OracleServer {
        id,
        state,
        txns,
        cur_branch,
        miss_pct,
        file_blocks,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_os::Pid;
    use oscar_rng::{SeedableRng, SmallRng};

    #[test]
    fn master_warms_sga_then_forks_servers() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut m = OracleMaster::new();
        let mut forks = 0;
        let mut warm_writes = 0;
        for _ in 0..400 {
            let mut e = TaskEnv {
                rng: &mut rng,
                pid: Pid(1),
                now: 0,
            };
            match m.next(&mut e) {
                Some(UOp::Syscall(SysReq::Fork { .. })) => forks += 1,
                Some(UOp::Touch { write: true, .. }) => warm_writes += 1,
                Some(UOp::Syscall(SysReq::Wait)) => break,
                _ => {}
            }
        }
        assert_eq!(forks, SERVERS);
        assert!(warm_writes > 200, "warm_writes = {warm_writes}");
    }

    #[test]
    fn server_runs_transactions_with_latches_and_log_writes() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut s = OracleServer::new(0);
        let mut log_writes = 0;
        let mut latches = 0;
        let mut reads_at = 0;
        for _ in 0..2000 {
            let mut e = TaskEnv {
                rng: &mut rng,
                pid: Pid(2),
                now: 0,
            };
            match s.next(&mut e) {
                Some(UOp::Syscall(SysReq::Write { inode, .. }))
                | Some(UOp::Syscall(SysReq::SyncWrite { inode, .. })) => {
                    assert_eq!(inode, inodes::DB_LOG);
                    log_writes += 1;
                }
                Some(UOp::Syscall(SysReq::ReadAt { .. })) => reads_at += 1,
                Some(UOp::LockAcq { .. }) => latches += 1,
                None => panic!("servers run forever"),
                _ => {}
            }
        }
        assert!(s.transactions() > 50);
        assert!(
            log_writes as u64 >= s.transactions() / 8,
            "group commit every ~6 txns"
        );
        assert!(latches as u64 >= 2 * s.transactions());
        assert!(reads_at > 0, "some account lookups must miss the SGA");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // compile-time layout checks
    fn sga_layout_is_disjoint() {
        assert!(TELLER_OFF >= BRANCHES * ROW_BYTES);
        assert!(ACCOUNT_OFF >= TELLER_OFF + TELLERS * ROW_BYTES);
        assert!(POOL_OFF >= ACCOUNT_OFF + ACCOUNTS * ROW_BYTES);
        assert!(
            (POOL_OFF + POOL_BYTES + 112 * 1024) / 4096 <= SGA_PAGES as u64,
            "SGA layout exceeds the segment"
        );
    }
}
