//! # oscar-workloads
//!
//! The three parallel workloads measured in the paper, as synthetic
//! user-program models for the `oscar-os` kernel:
//!
//! * [`pmake()`] — a parallel make of 56 C files with at most 8
//!   concurrent jobs;
//! * [`multpgm`] — a timesharing mix: the Mp3d particle simulator (4
//!   processes, 50,000 particles) plus Pmake plus five screen-edit
//!   sessions;
//! * [`oracle()`] — a scaled-down TP1 database (10 branches, 100 tellers,
//!   10,000 accounts) with server processes sharing an in-memory
//!   buffer pool.
//!
//! # Examples
//!
//! ```
//! use oscar_workloads::{pmake, Workload};
//!
//! let w: Workload = pmake();
//! assert_eq!(w.name, "Pmake");
//! assert_eq!(w.tasks.len(), 1, "make master forks the jobs itself");
//! ```

pub mod common;
pub mod edit;
pub mod factory;
pub mod mp3d;
pub mod netdaemon;
pub mod oracle;
pub mod pmake;

use oscar_os::user::UserTask;

pub use edit::{EdPair, EdSession, Typist};
pub use factory::{task_factory, WorkloadTaskFactory};
pub use mp3d::{Mp3dMaster, Mp3dWorker};
pub use netdaemon::NetDaemon;
pub use oracle::{OracleMaster, OracleServer};
pub use pmake::{CompileJob, MakeMaster};

/// A named set of initial processes.
pub struct Workload {
    /// Workload name as used in the paper's tables.
    pub name: &'static str,
    /// Initial processes (they fork the rest themselves).
    pub tasks: Vec<Box<dyn UserTask>>,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Workload({}, {} initial tasks)",
            self.name,
            self.tasks.len()
        )
    }
}

/// Which of the paper's workloads to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Parallel make.
    Pmake,
    /// Timesharing mix.
    Multpgm,
    /// TP1 database.
    Oracle,
}

impl WorkloadKind {
    /// All workloads, in the paper's table order.
    pub const ALL: [WorkloadKind; 3] = [
        WorkloadKind::Pmake,
        WorkloadKind::Multpgm,
        WorkloadKind::Oracle,
    ];

    /// The paper's name for the workload.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Pmake => "Pmake",
            WorkloadKind::Multpgm => "Multpgm",
            WorkloadKind::Oracle => "Oracle",
        }
    }

    /// Builds the workload.
    pub fn build(self) -> Workload {
        match self {
            WorkloadKind::Pmake => pmake(),
            WorkloadKind::Multpgm => multpgm(),
            WorkloadKind::Oracle => oracle(),
        }
    }

    /// Builds the workload weak-scaled to a `num_cpus`-CPU machine:
    /// per-CPU offered load matches the paper's 4-CPU mix, so the
    /// scalability study measures the *system*, not a fixed job starved
    /// or drowned by the machine size. At four CPUs this is exactly
    /// [`WorkloadKind::build`] (the differential tests rely on that).
    ///
    /// The scaling rules, normalized to reproduce the paper at n = 4:
    ///
    /// * *Pmake*: 14·n files, `-J` 2·n;
    /// * *Multpgm*: Mp3d with n workers, the scaled Pmake, and
    ///   max(n + 1, 5) edit sessions;
    /// * *Oracle*: 3·n server processes against the one shared SGA.
    pub fn build_for(self, num_cpus: u8) -> Workload {
        if num_cpus == 4 {
            return self.build();
        }
        let n = num_cpus.max(1) as u32;
        match self {
            WorkloadKind::Pmake => Workload {
                name: "Pmake",
                tasks: vec![Box::new(MakeMaster::with_size(14 * n, 2 * n).looping())],
            },
            WorkloadKind::Multpgm => {
                let mut tasks: Vec<Box<dyn UserTask>> = vec![
                    Box::new(Mp3dMaster::with_workers(n)),
                    Box::new(MakeMaster::with_size(14 * n, 2 * n).looping()),
                ];
                for session in 0..(n + 1).max(5) {
                    tasks.push(Box::new(EdPair::new(session)));
                }
                Workload {
                    name: "Multpgm",
                    tasks,
                }
            }
            WorkloadKind::Oracle => Workload {
                name: "Oracle",
                tasks: vec![Box::new(OracleMaster::with_servers(3 * n))],
            },
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The *Pmake* workload: a parallel make of 56 files, `-J 8`.
pub fn pmake() -> Workload {
    Workload {
        name: "Pmake",
        tasks: vec![Box::new(MakeMaster::new().looping())],
    }
}

/// The *Multpgm* workload: Mp3d + Pmake + five edit sessions, all
/// started at the same time, as in the paper.
pub fn multpgm() -> Workload {
    let mut tasks: Vec<Box<dyn UserTask>> = vec![
        Box::new(Mp3dMaster::new()),
        Box::new(MakeMaster::new().looping()),
    ];
    for session in 0..5 {
        tasks.push(Box::new(EdPair::new(session)));
    }
    Workload {
        name: "Multpgm",
        tasks,
    }
}

/// The *Oracle* workload: the scaled TP1 database.
pub fn oracle() -> Workload {
    Workload {
        name: "Oracle",
        tasks: vec![Box::new(OracleMaster::new())],
    }
}

/// The standard-sized TP1 variant (does not fit in memory; heavy I/O).
/// The paper ran this too and reports the OS-miss characteristics are
/// qualitatively the same as the scaled benchmark's.
pub fn oracle_standard() -> Workload {
    Workload {
        name: "Oracle",
        tasks: vec![Box::new(OracleMaster::standard_size())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_composition() {
        assert_eq!(pmake().tasks.len(), 1);
        assert_eq!(multpgm().tasks.len(), 7, "mp3d + make + 5 ed pairs");
        assert_eq!(oracle().tasks.len(), 1);
    }

    #[test]
    fn kinds_build_their_workloads() {
        for k in WorkloadKind::ALL {
            let w = k.build();
            assert_eq!(w.name, k.label());
            assert!(!w.tasks.is_empty());
        }
    }

    #[test]
    fn build_for_reduces_to_the_paper_at_four_cpus() {
        for k in WorkloadKind::ALL {
            let scaled = k.build_for(4);
            let paper = k.build();
            assert_eq!(scaled.name, paper.name);
            assert_eq!(scaled.tasks.len(), paper.tasks.len());
        }
    }

    #[test]
    fn build_for_scales_the_offered_load() {
        assert_eq!(
            multpgm().tasks.len(),
            WorkloadKind::Multpgm.build_for(4).tasks.len()
        );
        // 16 CPUs: mp3d master + make master + 17 edit sessions.
        assert_eq!(WorkloadKind::Multpgm.build_for(16).tasks.len(), 19);
        // Masters fork the rest themselves on every size.
        for n in [8u8, 32, 64] {
            assert_eq!(WorkloadKind::Pmake.build_for(n).tasks.len(), 1);
            assert_eq!(WorkloadKind::Oracle.build_for(n).tasks.len(), 1);
        }
    }

    #[test]
    fn debug_impl_is_informative() {
        let d = format!("{:?}", multpgm());
        assert!(d.contains("Multpgm"));
        assert!(d.contains("7"));
    }
}
