//! Shared conventions for the workload models: the simulated file-system
//! namespace (inode numbers), executable images, and address-space
//! constants.

use oscar_machine::addr::VAddr;
use oscar_os::user::segs;
use oscar_os::ExecImage;

/// Inode nambering of the simulated file system.
pub mod inodes {
    /// The `cc` compiler driver image (shared by every compile job).
    pub const IMG_CC: u32 = 50;
    /// The Mp3d particle-simulator image.
    pub const IMG_MP3D: u32 = 51;
    /// The `ed` editor image.
    pub const IMG_ED: u32 = 52;
    /// The Oracle server image.
    pub const IMG_ORACLE: u32 = 53;
    /// The Makefile.
    pub const MAKEFILE: u32 = 100;
    /// C source files: `SRC_BASE + file_index`.
    pub const SRC_BASE: u32 = 200;
    /// Shared header files: `HDR_BASE + header_index`.
    pub const HDR_BASE: u32 = 300;
    /// Compiler outputs: `OUT_BASE + file_index`.
    pub const OUT_BASE: u32 = 400;
    /// The editor's text files: `TEXT_BASE + session`.
    pub const TEXT_BASE: u32 = 500;
    /// Oracle data files: `DB_BASE + file`.
    pub const DB_BASE: u32 = 600;
    /// The Oracle redo log.
    pub const DB_LOG: u32 = 640;
}

/// The C compiler image: a mid-sized text segment whose phases loop over
/// different windows.
pub fn cc_image() -> ExecImage {
    ExecImage {
        inode: inodes::IMG_CC,
        text_bytes: 180 * 1024,
        data_bytes: 24 * 1024,
    }
}

/// The Mp3d image.
pub fn mp3d_image() -> ExecImage {
    ExecImage {
        inode: inodes::IMG_MP3D,
        text_bytes: 56 * 1024,
        data_bytes: 16 * 1024,
    }
}

/// The `ed` image.
pub fn ed_image() -> ExecImage {
    ExecImage {
        inode: inodes::IMG_ED,
        text_bytes: 44 * 1024,
        data_bytes: 8 * 1024,
    }
}

/// The Oracle server image: the paper notes its instruction working set
/// is large (Figure 6 only flattens at 1 MB I-caches).
pub fn oracle_image() -> ExecImage {
    ExecImage {
        inode: inodes::IMG_ORACLE,
        text_bytes: 560 * 1024,
        data_bytes: 64 * 1024,
    }
}

/// Virtual address of byte `off` within the text segment.
pub fn text_at(off: u64) -> VAddr {
    segs::TEXT_BASE.add(off)
}

/// Virtual address of byte `off` within the private heap, *after* the
/// two I/O buffer pages and the initialized-data pages the kernel
/// reserves at the heap base.
pub fn heap_at(off: u64) -> VAddr {
    segs::DATA_BASE.add(64 * 1024 + off)
}

/// Virtual address of byte `off` within shared segment `seg`.
pub fn shm_at(seg: u32, off: u64) -> VAddr {
    oscar_os::shm_base_vpn(seg).base().add(off)
}

/// Virtual address of byte `off` within the stack segment.
pub fn stack_at(off: u64) -> VAddr {
    segs::STACK_BASE.add(off)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_land_in_their_segments() {
        assert!(segs::is_text(text_at(1000).page()));
        assert!(!segs::is_text(heap_at(0).page()));
        assert!(segs::is_shm(shm_at(0, 0).page()));
        assert!(segs::is_shm(shm_at(2, 4 * 1024 * 1024 - 1).page()));
        assert!(segs::is_stack(stack_at(16).page()));
    }

    #[test]
    fn images_are_distinct_files() {
        let inodes = [
            cc_image().inode,
            mp3d_image().inode,
            ed_image().inode,
            oracle_image().inode,
        ];
        let set: std::collections::HashSet<_> = inodes.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn oracle_image_is_the_largest() {
        assert!(oracle_image().text_bytes > cc_image().text_bytes);
        assert!(oracle_image().text_pages() >= 140);
    }
}
