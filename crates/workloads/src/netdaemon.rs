//! The network daemons of the paper's measurement setup.
//!
//! The traced traces were shipped to a remote disk over the network, and
//! the paper notes that *"the activity of the network deamons ...
//! partially destroy the I and D-cache state of the processor on which
//! they run (processor 1 on the SGI 4D/340)"* — network functions in
//! IRIX 3.2 are not multithreaded and run on CPU 1 only. This task
//! models that perturbation: a daemon that wakes periodically, receives
//! a network burst (running the kernel's network stack), and touches its
//! own protocol buffers.

use oscar_os::snap::{SnapError, TaskRestorer, TaskSaver};
use oscar_os::user::{SysReq, TaskEnv, UOp, UserTask};
use oscar_rng::Rng;

use crate::common::{heap_at, text_at};

/// The network daemon (pin it to CPU 1 with
/// `OsWorld::spawn_initial_pinned`, as the experiment driver does).
#[derive(Debug)]
pub struct NetDaemon {
    state: DaemonState,
    /// Wake period in clock ticks.
    period: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DaemonState {
    Nap,
    Recv { burst: u32 },
    Process { burst: u32 },
}

impl NetDaemon {
    /// A daemon waking every `period` clock ticks.
    pub fn new(period: u32) -> Self {
        NetDaemon {
            state: DaemonState::Nap,
            period: period.max(1),
        }
    }
}

impl Default for NetDaemon {
    fn default() -> Self {
        Self::new(2)
    }
}

impl UserTask for NetDaemon {
    fn next(&mut self, env: &mut TaskEnv<'_>) -> Option<UOp> {
        use DaemonState::*;
        match self.state {
            Nap => {
                self.state = Recv {
                    burst: env.rng.gen_range(2..6),
                };
                Some(UOp::Syscall(SysReq::Nap { ticks: self.period }))
            }
            Recv { burst } => {
                self.state = Process { burst };
                Some(UOp::Syscall(SysReq::SockRecv {
                    bytes: env.rng.gen_range(256..4096),
                }))
            }
            Process { burst } => {
                self.state = if burst <= 1 {
                    Nap
                } else {
                    Recv { burst: burst - 1 }
                };
                // Protocol processing: code loops plus buffer churn —
                // the cache perturbation the paper describes.
                if burst % 2 == 0 {
                    Some(UOp::run_loop(
                        text_at(0x2000),
                        6 * 1024,
                        env.rng.gen_range(3..8),
                    ))
                } else {
                    Some(UOp::sweep(
                        heap_at((burst as u64 % 4) * 16 * 1024),
                        16 * 1024,
                        32,
                        true,
                    ))
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "netdaemon"
    }

    fn save(&self, s: &mut TaskSaver<'_>) -> bool {
        use DaemonState::*;
        match self.state {
            Nap => s.u8(0),
            Recv { burst } => {
                s.u8(1);
                s.u32(burst);
            }
            Process { burst } => {
                s.u8(2);
                s.u32(burst);
            }
        }
        s.u32(self.period);
        true
    }
}

pub(crate) fn restore_daemon(r: &mut TaskRestorer<'_, '_>) -> Result<Box<dyn UserTask>, SnapError> {
    use DaemonState::*;
    let state = match r.u8()? {
        0 => Nap,
        1 => Recv { burst: r.u32()? },
        2 => Process { burst: r.u32()? },
        _ => return Err(SnapError::Corrupt("netdaemon state")),
    };
    let period = r.u32()?;
    Ok(Box::new(NetDaemon { state, period }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_os::Pid;
    use oscar_rng::{SeedableRng, SmallRng};

    #[test]
    fn daemon_cycles_nap_recv_process() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut d = NetDaemon::new(2);
        let mut naps = 0;
        let mut recvs = 0;
        for _ in 0..100 {
            let mut e = TaskEnv {
                rng: &mut rng,
                pid: Pid(9),
                now: 0,
            };
            match d.next(&mut e) {
                Some(UOp::Syscall(SysReq::Nap { ticks })) => {
                    naps += 1;
                    assert_eq!(ticks, 2);
                }
                Some(UOp::Syscall(SysReq::SockRecv { bytes })) => {
                    recvs += 1;
                    assert!((256..4096).contains(&bytes));
                }
                None => panic!("daemons run forever"),
                _ => {}
            }
        }
        assert!(naps > 5);
        assert!(recvs > naps, "several bursts per wake");
    }
}
