//! The *Pmake* workload: a parallel make of 56 C files (~480 lines
//! each) with at most 8 concurrent jobs (`-J 8`), as in the paper. The
//! workload alternates I/O-heavy preprocessing with compute-intensive
//! optimization, exactly the mix the paper describes.

use oscar_os::snap::{SnapError, TaskRestorer, TaskSaver};
use oscar_os::user::{SysReq, TaskEnv, UOp, UserTask};
use oscar_rng::Rng;

use crate::common::{cc_image, heap_at, inodes, text_at};

/// Number of files compiled (as in the paper).
pub const NUM_FILES: u32 = 56;
/// Maximum concurrent jobs (`-J 8`).
pub const MAX_JOBS: u32 = 8;

/// The `make` master process: reads the Makefile, keeps up to
/// [`MAX_JOBS`] compile jobs running, waits for them all, exits.
#[derive(Debug)]
pub struct MakeMaster {
    files: u32,
    max_jobs: u32,
    started: u32,
    running: u32,
    state: MasterState,
    looping: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MasterState {
    OpenMakefile,
    ReadMakefile(u32),
    Think,
    Stat,
    Dispatch,
    AwaitSlot,
    Reaped,
    Drain,
}

impl MakeMaster {
    /// A master for the paper's configuration (56 files, 8 jobs).
    pub fn new() -> Self {
        Self::with_size(NUM_FILES, MAX_JOBS)
    }

    /// A master for an explicit configuration.
    pub fn with_size(files: u32, max_jobs: u32) -> Self {
        MakeMaster {
            files,
            max_jobs: max_jobs.max(1),
            started: 0,
            running: 0,
            state: MasterState::OpenMakefile,
            looping: false,
        }
    }

    /// Restart the build as soon as it finishes (for long measurement
    /// windows; one pass of the real build is 1-2 minutes of machine
    /// time, which scaled runs cannot cover).
    pub fn looping(mut self) -> Self {
        self.looping = true;
        self
    }
}

impl Default for MakeMaster {
    fn default() -> Self {
        Self::new()
    }
}

impl UserTask for MakeMaster {
    fn next(&mut self, env: &mut TaskEnv<'_>) -> Option<UOp> {
        match self.state {
            MasterState::OpenMakefile => {
                self.state = MasterState::ReadMakefile(4);
                Some(UOp::Syscall(SysReq::Open {
                    inode: inodes::MAKEFILE,
                    components: 2,
                }))
            }
            MasterState::ReadMakefile(left) => {
                if left == 0 {
                    self.state = MasterState::Dispatch;
                    Some(UOp::Syscall(SysReq::Close {
                        inode: inodes::MAKEFILE,
                    }))
                } else {
                    self.state = MasterState::ReadMakefile(left - 1);
                    Some(UOp::Syscall(SysReq::Read {
                        inode: inodes::MAKEFILE,
                        bytes: 2048,
                    }))
                }
            }
            MasterState::Think => {
                self.state = MasterState::Stat;
                // Dependency analysis: a bit of user work.
                Some(UOp::run_loop(
                    text_at(0x200),
                    1536,
                    env.rng.gen_range(6..14),
                ))
            }
            MasterState::Stat => {
                self.state = MasterState::Dispatch;
                // make stats the target and its dependencies.
                Some(UOp::Syscall(SysReq::Open {
                    inode: inodes::SRC_BASE + self.started.saturating_sub(1) % NUM_FILES,
                    components: 3,
                }))
            }
            MasterState::Dispatch => {
                if self.started < self.files && self.running < self.max_jobs {
                    let file = self.started;
                    self.started += 1;
                    self.running += 1;
                    self.state = MasterState::Think;
                    Some(UOp::Syscall(SysReq::Fork {
                        child: Box::new(CompileJob::new(file)),
                    }))
                } else if self.running > 0 {
                    self.state = MasterState::Reaped;
                    Some(UOp::Syscall(SysReq::Wait))
                } else if self.started < self.files {
                    self.state = MasterState::AwaitSlot;
                    Some(UOp::Compute { cycles: 500 })
                } else if self.looping {
                    self.started = 0;
                    self.state = MasterState::OpenMakefile;
                    Some(UOp::Compute { cycles: 2000 })
                } else {
                    self.state = MasterState::Drain;
                    Some(UOp::Compute { cycles: 100 })
                }
            }
            MasterState::AwaitSlot => {
                self.state = MasterState::Dispatch;
                Some(UOp::Compute { cycles: 500 })
            }
            MasterState::Reaped => {
                // The Wait syscall has returned: one child is gone.
                self.running = self.running.saturating_sub(1);
                self.state = MasterState::Dispatch;
                Some(UOp::Touch {
                    addr: heap_at(64).raw(),
                    write: true,
                })
            }
            MasterState::Drain => None,
        }
    }

    fn name(&self) -> &'static str {
        "make"
    }

    fn save(&self, s: &mut TaskSaver<'_>) -> bool {
        s.u32(self.files);
        s.u32(self.max_jobs);
        s.u32(self.started);
        s.u32(self.running);
        match self.state {
            MasterState::OpenMakefile => s.u8(0),
            MasterState::ReadMakefile(left) => {
                s.u8(1);
                s.u32(left);
            }
            MasterState::Think => s.u8(2),
            MasterState::Stat => s.u8(3),
            MasterState::Dispatch => s.u8(4),
            MasterState::AwaitSlot => s.u8(5),
            MasterState::Reaped => s.u8(6),
            MasterState::Drain => s.u8(7),
        }
        s.bool(self.looping);
        true
    }
}

pub(crate) fn restore_master(r: &mut TaskRestorer<'_, '_>) -> Result<Box<dyn UserTask>, SnapError> {
    let files = r.u32()?;
    let max_jobs = r.u32()?;
    let started = r.u32()?;
    let running = r.u32()?;
    let state = match r.u8()? {
        0 => MasterState::OpenMakefile,
        1 => MasterState::ReadMakefile(r.u32()?),
        2 => MasterState::Think,
        3 => MasterState::Stat,
        4 => MasterState::Dispatch,
        5 => MasterState::AwaitSlot,
        6 => MasterState::Reaped,
        7 => MasterState::Drain,
        _ => return Err(SnapError::Corrupt("make master state")),
    };
    let looping = r.bool()?;
    Ok(Box::new(MakeMaster {
        files,
        max_jobs,
        started,
        running,
        state,
        looping,
    }))
}

/// One compile job: `exec`s the (shared) compiler image, preprocesses
/// (source + header reads), compiles (compute loops over a large code
/// working set), and writes the object file.
#[derive(Debug)]
pub struct CompileJob {
    file: u32,
    state: JobState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Exec,
    OpenSrc,
    ReadSrc { chunk: u32 },
    Scan { chunk: u32 },
    OpenHdr { hdr: u32 },
    ReadHdr { hdr: u32, chunk: u32 },
    CloseSrc,
    WriteTmp { pass: u32, chunk: u32 },
    ReadTmp { pass: u32, chunk: u32 },
    Compile { phase: u32 },
    CompileData { phase: u32 },
    OpenOut,
    WriteOut { chunk: u32 },
    CloseOut,
    Done,
}

/// Source file size: ~480 lines of C.
const SRC_BYTES: u32 = 20 * 1024;
const SRC_CHUNK: u32 = 2048;
const NUM_HDRS: u32 = 6;
const HDR_CHUNKS: u32 = 2;
const OUT_BYTES: u32 = 10 * 1024;
const OUT_CHUNK: u32 = 2048;
const COMPILE_PHASES: u32 = 9;
/// Temp-file size written between compiler passes (cpp -> cc1 -> as).
const TMP_BYTES: u32 = 24 * 1024;
const TMP_CHUNK: u32 = 4096;
/// Compile phases per temp-file pass boundary.
const PHASES_PER_PASS: u32 = 3;

impl CompileJob {
    /// A job compiling file number `file`.
    pub fn new(file: u32) -> Self {
        CompileJob {
            file,
            state: JobState::Exec,
        }
    }
}

impl UserTask for CompileJob {
    fn next(&mut self, env: &mut TaskEnv<'_>) -> Option<UOp> {
        use JobState::*;
        match self.state {
            Exec => {
                self.state = OpenSrc;
                Some(UOp::Syscall(SysReq::Exec { image: cc_image() }))
            }
            OpenSrc => {
                self.state = ReadSrc { chunk: 0 };
                Some(UOp::Syscall(SysReq::Open {
                    inode: inodes::SRC_BASE + self.file,
                    components: 3,
                }))
            }
            ReadSrc { chunk } => {
                self.state = Scan { chunk };
                Some(UOp::Syscall(SysReq::Read {
                    inode: inodes::SRC_BASE + self.file,
                    bytes: SRC_CHUNK,
                }))
            }
            Scan { chunk } => {
                // Tokenize the chunk just read: user work over the I/O
                // buffer and the cpp tables.
                self.state = if (chunk + 1) * SRC_CHUNK >= SRC_BYTES {
                    OpenHdr { hdr: 0 }
                } else {
                    ReadSrc { chunk: chunk + 1 }
                };
                Some(UOp::run_loop(
                    text_at(0x1000),
                    4 * 1024,
                    env.rng.gen_range(30..80),
                ))
            }
            OpenHdr { hdr } => {
                self.state = ReadHdr { hdr, chunk: 0 };
                // Headers are shared across jobs: later opens hit the
                // buffer cache warm.
                Some(UOp::Syscall(SysReq::Open {
                    inode: inodes::HDR_BASE + (self.file + hdr) % 12,
                    components: 2,
                }))
            }
            ReadHdr { hdr, chunk } => {
                self.state = if chunk + 1 >= HDR_CHUNKS {
                    if hdr + 1 >= NUM_HDRS {
                        CloseSrc
                    } else {
                        OpenHdr { hdr: hdr + 1 }
                    }
                } else {
                    ReadHdr {
                        hdr,
                        chunk: chunk + 1,
                    }
                };
                Some(UOp::Syscall(SysReq::Read {
                    inode: inodes::HDR_BASE + (self.file + hdr) % 12,
                    bytes: 4096,
                }))
            }
            CloseSrc => {
                self.state = WriteTmp { pass: 0, chunk: 0 };
                Some(UOp::Syscall(SysReq::Close {
                    inode: inodes::SRC_BASE + self.file,
                }))
            }
            WriteTmp { pass, chunk } => {
                // cpp/cc1 hand off through /tmp files, as the real cc
                // driver does; these hit the buffer cache warm.
                if chunk * TMP_CHUNK >= TMP_BYTES {
                    self.state = ReadTmp { pass, chunk: 0 };
                    return Some(UOp::Compute { cycles: 2000 });
                }
                self.state = WriteTmp {
                    pass,
                    chunk: chunk + 1,
                };
                Some(UOp::Syscall(SysReq::WriteAt {
                    inode: inodes::OUT_BASE + 100 + self.file * 4 + pass,
                    offset: (chunk * TMP_CHUNK) as u64,
                    bytes: TMP_CHUNK,
                }))
            }
            ReadTmp { pass, chunk } => {
                if chunk * TMP_CHUNK >= TMP_BYTES {
                    self.state = Compile {
                        phase: pass * PHASES_PER_PASS,
                    };
                    return Some(UOp::Compute { cycles: 2000 });
                }
                self.state = ReadTmp {
                    pass,
                    chunk: chunk + 1,
                };
                Some(UOp::Syscall(SysReq::ReadAt {
                    inode: inodes::OUT_BASE + 100 + self.file * 4 + pass,
                    offset: (chunk * TMP_CHUNK) as u64,
                    bytes: TMP_CHUNK,
                }))
            }
            Compile { phase } => {
                // cc1/optimizer: loop over a window of the compiler's
                // large text segment.
                self.state = CompileData { phase };
                let off =
                    (phase as u64 * 31 * 1024 + env.rng.gen_range(0..8u64) * 1024) % (150 * 1024);
                let body = env.rng.gen_range(6..24u32) * 1024;
                Some(UOp::run_loop(
                    text_at(off),
                    body,
                    env.rng.gen_range(240..480),
                ))
            }
            CompileData { phase } => {
                self.state = if phase + 1 >= COMPILE_PHASES {
                    OpenOut
                } else if (phase + 1) % PHASES_PER_PASS == 0 {
                    WriteTmp {
                        pass: (phase + 1) / PHASES_PER_PASS,
                        chunk: 0,
                    }
                } else {
                    Compile { phase: phase + 1 }
                };
                // Walk the IR: linear sweeps over an arena a bit larger
                // than the second-level cache, plus a page-strided
                // chasing pass for TLB pressure.
                const ARENA: u64 = 384 * 1024;
                match phase % 3 {
                    0 => {
                        let len = env.rng.gen_range(32..96) * 1024u64;
                        let base = (phase as u64 * 37 * 1024) % (ARENA - len);
                        Some(UOp::sweep(heap_at(base), len, 32, phase % 2 == 1))
                    }
                    1 => Some(UOp::walk(
                        heap_at(0),
                        192 * 1024,
                        env.rng.gen_range(2000..5000),
                        env.rng.gen(),
                    )),
                    _ => Some(UOp::sweep(heap_at(0), ARENA, 4160, false)),
                }
            }
            OpenOut => {
                self.state = WriteOut { chunk: 0 };
                Some(UOp::Syscall(SysReq::Open {
                    inode: inodes::OUT_BASE + self.file,
                    components: 3,
                }))
            }
            WriteOut { chunk } => {
                if chunk * OUT_CHUNK >= OUT_BYTES {
                    self.state = CloseOut;
                    return Some(UOp::Syscall(SysReq::Close {
                        inode: inodes::OUT_BASE + self.file,
                    }));
                }
                self.state = WriteOut { chunk: chunk + 1 };
                Some(UOp::Syscall(SysReq::Write {
                    inode: inodes::OUT_BASE + self.file,
                    bytes: OUT_CHUNK,
                }))
            }
            CloseOut => {
                self.state = Done;
                // Assembler tail work.
                Some(UOp::run_loop(text_at(0x8000), 4096, 3))
            }
            Done => None,
        }
    }

    fn name(&self) -> &'static str {
        "cc"
    }

    fn save(&self, s: &mut TaskSaver<'_>) -> bool {
        use JobState::*;
        s.u32(self.file);
        match self.state {
            Exec => s.u8(0),
            OpenSrc => s.u8(1),
            ReadSrc { chunk } => {
                s.u8(2);
                s.u32(chunk);
            }
            Scan { chunk } => {
                s.u8(3);
                s.u32(chunk);
            }
            OpenHdr { hdr } => {
                s.u8(4);
                s.u32(hdr);
            }
            ReadHdr { hdr, chunk } => {
                s.u8(5);
                s.u32(hdr);
                s.u32(chunk);
            }
            CloseSrc => s.u8(6),
            WriteTmp { pass, chunk } => {
                s.u8(7);
                s.u32(pass);
                s.u32(chunk);
            }
            ReadTmp { pass, chunk } => {
                s.u8(8);
                s.u32(pass);
                s.u32(chunk);
            }
            Compile { phase } => {
                s.u8(9);
                s.u32(phase);
            }
            CompileData { phase } => {
                s.u8(10);
                s.u32(phase);
            }
            OpenOut => s.u8(11),
            WriteOut { chunk } => {
                s.u8(12);
                s.u32(chunk);
            }
            CloseOut => s.u8(13),
            Done => s.u8(14),
        }
        true
    }
}

pub(crate) fn restore_job(r: &mut TaskRestorer<'_, '_>) -> Result<Box<dyn UserTask>, SnapError> {
    use JobState::*;
    let file = r.u32()?;
    let state = match r.u8()? {
        0 => Exec,
        1 => OpenSrc,
        2 => ReadSrc { chunk: r.u32()? },
        3 => Scan { chunk: r.u32()? },
        4 => OpenHdr { hdr: r.u32()? },
        5 => ReadHdr {
            hdr: r.u32()?,
            chunk: r.u32()?,
        },
        6 => CloseSrc,
        7 => WriteTmp {
            pass: r.u32()?,
            chunk: r.u32()?,
        },
        8 => ReadTmp {
            pass: r.u32()?,
            chunk: r.u32()?,
        },
        9 => Compile { phase: r.u32()? },
        10 => CompileData { phase: r.u32()? },
        11 => OpenOut,
        12 => WriteOut { chunk: r.u32()? },
        13 => CloseOut,
        14 => Done,
        _ => return Err(SnapError::Corrupt("compile job state")),
    };
    Ok(Box::new(CompileJob { file, state }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_os::Pid;
    use oscar_rng::{SeedableRng, SmallRng};

    fn env(rng: &mut SmallRng) -> TaskEnv<'_> {
        TaskEnv {
            rng,
            pid: Pid(1),
            now: 0,
        }
    }

    #[test]
    fn master_spawns_all_files_then_finishes() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut master = MakeMaster::with_size(5, 2);
        let mut forks = 0;
        let mut waits = 0;
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 10_000, "master did not terminate");
            let mut e = env(&mut rng);
            match master.next(&mut e) {
                None => break,
                Some(UOp::Syscall(SysReq::Fork { .. })) => forks += 1,
                Some(UOp::Syscall(SysReq::Wait)) => waits += 1,
                Some(_) => {}
            }
        }
        assert_eq!(forks, 5);
        assert_eq!(waits, 5, "every job is waited for");
    }

    #[test]
    fn master_respects_job_limit() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut master = MakeMaster::with_size(10, 3);
        let mut in_flight: i32 = 0;
        let mut peak = 0;
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 10_000);
            let mut e = env(&mut rng);
            match master.next(&mut e) {
                None => break,
                Some(UOp::Syscall(SysReq::Fork { .. })) => {
                    in_flight += 1;
                    peak = peak.max(in_flight);
                }
                Some(UOp::Syscall(SysReq::Wait)) => in_flight -= 1,
                Some(_) => {}
            }
        }
        assert_eq!(peak, 3);
    }

    #[test]
    fn compile_job_execs_reads_computes_writes() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut job = CompileJob::new(3);
        let mut saw_exec = false;
        let mut reads = 0;
        let mut writes = 0;
        let mut loops = 0;
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 10_000, "job did not terminate");
            let mut e = env(&mut rng);
            match job.next(&mut e) {
                None => break,
                Some(UOp::Syscall(SysReq::Exec { image })) => {
                    saw_exec = true;
                    assert_eq!(image.inode, inodes::IMG_CC);
                }
                Some(UOp::Syscall(SysReq::Read { .. })) => reads += 1,
                Some(UOp::Syscall(SysReq::Write { .. })) => writes += 1,
                Some(UOp::RunLoop { .. }) => loops += 1,
                Some(_) => {}
            }
        }
        assert!(saw_exec);
        assert!(reads >= 10, "reads = {reads}");
        assert_eq!(writes, (OUT_BYTES / OUT_CHUNK) as i32);
        assert!(loops >= COMPILE_PHASES as i32);
    }

    #[test]
    fn jobs_are_deterministic_for_a_seed() {
        for seed in [1u64, 42] {
            let mut r1 = SmallRng::seed_from_u64(seed);
            let mut r2 = SmallRng::seed_from_u64(seed);
            let mut a = CompileJob::new(0);
            let mut b = CompileJob::new(0);
            for _ in 0..200 {
                let x = {
                    let mut e = env(&mut r1);
                    a.next(&mut e).map(|o| format!("{o:?}"))
                };
                let y = {
                    let mut e = env(&mut r2);
                    b.next(&mut e).map(|o| format!("{o:?}"))
                };
                assert_eq!(x, y);
                if x.is_none() {
                    break;
                }
            }
        }
    }
}
