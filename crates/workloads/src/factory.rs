//! The workload [`TaskFactory`]: maps snapshot task tags back to the
//! concrete task types of this crate.
//!
//! Every snapshottable task serializes itself under its
//! [`name()`](oscar_os::user::UserTask::name) tag; restoring a snapshot
//! needs something that knows all the concrete types, and that is this
//! factory. It lives here (not in `oscar-os`) so the dependency arrow
//! keeps pointing from workloads to the OS.

use oscar_os::snap::{SnapError, TaskFactory, TaskRestorer};
use oscar_os::user::UserTask;

/// The factory covering every task type in this crate.
#[derive(Debug, Default, Clone, Copy)]
pub struct WorkloadTaskFactory;

impl TaskFactory for WorkloadTaskFactory {
    fn restore(
        &self,
        tag: &str,
        r: &mut TaskRestorer<'_, '_>,
    ) -> Result<Option<Box<dyn UserTask>>, SnapError> {
        Ok(Some(match tag {
            "mp3d" => crate::mp3d::restore_master(r)?,
            "mp3d-worker" => crate::mp3d::restore_worker(r)?,
            "make" => crate::pmake::restore_master(r)?,
            "cc" => crate::pmake::restore_job(r)?,
            "typist" => crate::edit::restore_typist(r)?,
            "ed" => crate::edit::restore_session(r)?,
            "ed-pair" => crate::edit::restore_pair(r)?,
            "oracle" => crate::oracle::restore_master(r)?,
            "oracle-server" => crate::oracle::restore_server(r)?,
            "netdaemon" => crate::netdaemon::restore_daemon(r)?,
            _ => return Ok(None),
        }))
    }
}

/// The workload task factory as a shared reference (what
/// `OsWorld::restore_snapshot` wants).
pub fn task_factory() -> &'static dyn TaskFactory {
    static FACTORY: WorkloadTaskFactory = WorkloadTaskFactory;
    &FACTORY
}
