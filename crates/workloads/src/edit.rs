//! A screen-edit session: a simulated typist feeding `ed` commands
//! through a pipe, exactly as the paper constructs it — bursts of 1–15
//! characters at a time, rate-limited, driving character searches and
//! text edits in the editor, which echoes to the terminal through the
//! STREAMS path.
//!
//! Scaling note: the paper limits the typist to 25 characters per 5
//! seconds over a 1–2 minute trace; our traces are a few hundred
//! milliseconds to a few seconds, so the inter-burst naps are scaled
//! down (configurable) to keep the sessions active within the horizon.

use oscar_os::snap::{SnapError, TaskRestorer, TaskSaver};
use oscar_os::user::{SysReq, TaskEnv, UOp, UserTask};
use oscar_rng::Rng;

use crate::common::{ed_image, heap_at, inodes};

/// The simulated typist: naps, then sends a burst of 1–15 characters
/// down the pipe.
#[derive(Debug)]
pub struct Typist {
    pipe: u32,
    min_nap_ticks: u32,
    max_nap_ticks: u32,
    napping: bool,
}

impl Typist {
    /// A typist writing to `pipe`, napping 1–4 clock ticks between
    /// bursts (scaled from the paper's 5-second cap; see module docs).
    pub fn new(pipe: u32) -> Self {
        Typist {
            pipe,
            min_nap_ticks: 1,
            max_nap_ticks: 4,
            napping: true,
        }
    }
}

impl UserTask for Typist {
    fn next(&mut self, env: &mut TaskEnv<'_>) -> Option<UOp> {
        if self.napping {
            self.napping = false;
            let ticks = env.rng.gen_range(self.min_nap_ticks..=self.max_nap_ticks);
            Some(UOp::Syscall(SysReq::Nap { ticks }))
        } else {
            self.napping = true;
            // "bursts of 1-15 characters at a time" via rand().
            let chars = env.rng.gen_range(1..=15);
            Some(UOp::Syscall(SysReq::PipeWrite {
                pipe: self.pipe,
                bytes: chars,
            }))
        }
    }

    fn name(&self) -> &'static str {
        "typist"
    }

    fn save(&self, s: &mut TaskSaver<'_>) -> bool {
        save_typist(s, self);
        true
    }
}

fn save_typist(s: &mut TaskSaver<'_>, t: &Typist) {
    s.u32(t.pipe);
    s.u32(t.min_nap_ticks);
    s.u32(t.max_nap_ticks);
    s.bool(t.napping);
}

fn load_typist(r: &mut TaskRestorer<'_, '_>) -> Result<Typist, SnapError> {
    Ok(Typist {
        pipe: r.u32()?,
        min_nap_ticks: r.u32()?,
        max_nap_ticks: r.u32()?,
        napping: r.bool()?,
    })
}

pub(crate) fn restore_typist(r: &mut TaskRestorer<'_, '_>) -> Result<Box<dyn UserTask>, SnapError> {
    Ok(Box::new(load_typist(r)?))
}

/// The `ed` process: reads commands from the pipe, executes character
/// searches and edits over its text buffer, echoes to the terminal.
#[derive(Debug)]
pub struct EdSession {
    pipe: u32,
    stream: u32,
    text_inode: u32,
    state: EdState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdState {
    Exec,
    OpenText,
    LoadText { chunk: u32 },
    AwaitCommand,
    Search,
    Edit,
    Echo,
}

/// Size of the edited file held in the editor's buffer.
const TEXT_BYTES: u64 = 96 * 1024;
const LOAD_CHUNKS: u32 = 12;

impl EdSession {
    /// An editor session reading from `pipe`, echoing on terminal
    /// `stream`, and editing text file `session`.
    pub fn new(session: u32, pipe: u32, stream: u32) -> Self {
        EdSession {
            pipe,
            stream,
            text_inode: inodes::TEXT_BASE + session,
            state: EdState::Exec,
        }
    }
}

impl UserTask for EdSession {
    fn next(&mut self, env: &mut TaskEnv<'_>) -> Option<UOp> {
        use EdState::*;
        match self.state {
            Exec => {
                self.state = OpenText;
                Some(UOp::Syscall(SysReq::Exec { image: ed_image() }))
            }
            OpenText => {
                self.state = LoadText { chunk: 0 };
                Some(UOp::Syscall(SysReq::Open {
                    inode: self.text_inode,
                    components: 2,
                }))
            }
            LoadText { chunk } => {
                self.state = if chunk + 1 >= LOAD_CHUNKS {
                    AwaitCommand
                } else {
                    LoadText { chunk: chunk + 1 }
                };
                Some(UOp::Syscall(SysReq::Read {
                    inode: self.text_inode,
                    bytes: (TEXT_BYTES / LOAD_CHUNKS as u64) as u32,
                }))
            }
            AwaitCommand => {
                self.state = Search;
                // Blocks until the typist sends a burst.
                Some(UOp::Syscall(SysReq::PipeRead {
                    pipe: self.pipe,
                    bytes: 15,
                }))
            }
            Search => {
                self.state = if env.rng.gen_bool(0.4) { Edit } else { Echo };
                // Character search: scan a window of the text buffer.
                let start = env.rng.gen_range(0..TEXT_BYTES / 2);
                let len = env.rng.gen_range(4..32) * 1024u64;
                Some(UOp::sweep(
                    heap_at(start),
                    len.min(TEXT_BYTES - start),
                    16,
                    false,
                ))
            }
            Edit => {
                self.state = Echo;
                let at = env.rng.gen_range(0..TEXT_BYTES - 4096);
                Some(UOp::sweep(heap_at(at), 512, 16, true))
            }
            Echo => {
                self.state = AwaitCommand;
                Some(UOp::Syscall(SysReq::TtyWrite {
                    stream: self.stream,
                    bytes: env.rng.gen_range(8..64),
                }))
            }
        }
    }

    fn name(&self) -> &'static str {
        "ed"
    }

    fn save(&self, s: &mut TaskSaver<'_>) -> bool {
        use EdState::*;
        s.u32(self.pipe);
        s.u32(self.stream);
        s.u32(self.text_inode);
        match self.state {
            Exec => s.u8(0),
            OpenText => s.u8(1),
            LoadText { chunk } => {
                s.u8(2);
                s.u32(chunk);
            }
            AwaitCommand => s.u8(3),
            Search => s.u8(4),
            Edit => s.u8(5),
            Echo => s.u8(6),
        }
        true
    }
}

pub(crate) fn restore_session(
    r: &mut TaskRestorer<'_, '_>,
) -> Result<Box<dyn UserTask>, SnapError> {
    use EdState::*;
    let pipe = r.u32()?;
    let stream = r.u32()?;
    let text_inode = r.u32()?;
    let state = match r.u8()? {
        0 => Exec,
        1 => OpenText,
        2 => LoadText { chunk: r.u32()? },
        3 => AwaitCommand,
        4 => Search,
        5 => Edit,
        6 => Echo,
        _ => return Err(SnapError::Corrupt("ed session state")),
    };
    Ok(Box::new(EdSession {
        pipe,
        stream,
        text_inode,
        state,
    }))
}

/// Spawning wrapper: forks the `ed` child and then becomes the typist
/// (so one initial process yields the connected pair).
#[derive(Debug)]
pub struct EdPair {
    session: u32,
    forked: bool,
    typist: Typist,
}

impl EdPair {
    /// A connected typist/editor pair for session number `session`.
    pub fn new(session: u32) -> Self {
        EdPair {
            session,
            forked: false,
            typist: Typist::new(session),
        }
    }
}

impl UserTask for EdPair {
    fn next(&mut self, env: &mut TaskEnv<'_>) -> Option<UOp> {
        if !self.forked {
            self.forked = true;
            Some(UOp::Syscall(SysReq::Fork {
                child: Box::new(EdSession::new(self.session, self.session, self.session)),
            }))
        } else {
            self.typist.next(env)
        }
    }

    fn name(&self) -> &'static str {
        "ed-pair"
    }

    fn save(&self, s: &mut TaskSaver<'_>) -> bool {
        s.u32(self.session);
        s.bool(self.forked);
        save_typist(s, &self.typist);
        true
    }
}

pub(crate) fn restore_pair(r: &mut TaskRestorer<'_, '_>) -> Result<Box<dyn UserTask>, SnapError> {
    let session = r.u32()?;
    let forked = r.bool()?;
    let typist = load_typist(r)?;
    Ok(Box::new(EdPair {
        session,
        forked,
        typist,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_os::Pid;
    use oscar_rng::{SeedableRng, SmallRng};

    fn drive(task: &mut dyn UserTask, n: usize) -> Vec<String> {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut out = Vec::new();
        for _ in 0..n {
            let mut e = TaskEnv {
                rng: &mut rng,
                pid: Pid(1),
                now: 0,
            };
            match task.next(&mut e) {
                Some(op) => out.push(format!("{op:?}")),
                None => break,
            }
        }
        out
    }

    #[test]
    fn typist_alternates_nap_and_burst() {
        let mut t = Typist::new(0);
        let ops = drive(&mut t, 10);
        assert!(ops[0].contains("Nap"));
        assert!(ops[1].contains("PipeWrite"));
        assert!(ops[2].contains("Nap"));
        // Bursts stay within 1..=15 characters.
        for op in ops.iter().filter(|o| o.contains("PipeWrite")) {
            let digits: String = op
                .split(", ")
                .nth(1)
                .unwrap()
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            let bytes: u32 = digits.parse().unwrap();
            assert!((1..=15).contains(&bytes), "{op}");
        }
    }

    #[test]
    fn ed_session_reads_pipe_then_searches() {
        let mut ed = EdSession::new(0, 0, 0);
        let ops = drive(&mut ed, 40);
        assert!(ops[0].contains("Exec"));
        assert!(ops.iter().any(|o| o.contains("PipeRead")));
        assert!(ops.iter().any(|o| o.contains("Sweep")));
        assert!(ops.iter().any(|o| o.contains("TtyWrite")));
    }

    #[test]
    fn pair_forks_editor_then_types() {
        let mut pair = EdPair::new(2);
        let ops = drive(&mut pair, 5);
        assert!(ops[0].contains("Fork"));
        assert!(ops[1].contains("Nap"));
    }
}
