//! The Mp3d particle simulator: a 3-D rarefied-flow code run with four
//! processes and 50,000 particles, as in the paper's *Multpgm*
//! workload. Workers share the particle array and cell grid through a
//! shared-memory segment and synchronize each timestep with user-level
//! spin locks — whose failures trigger the `sginap` system calls the
//! paper finds dominating Multpgm's OS operation mix (Figure 2).

use std::cell::Cell;
use std::rc::Rc;

use oscar_os::snap::{SnapError, TaskRestorer, TaskSaver};
use oscar_os::user::{SysReq, TaskEnv, UOp, UserTask};
use oscar_rng::Rng;

use crate::common::{mp3d_image, shm_at, text_at};

/// Shared per-step barrier bookkeeping (the simulator is single
/// threaded, so plain `Rc<Cell<_>>` models the shared counters the real
/// workers keep in shared memory; the *memory traffic* of the barrier is
/// modeled by the lock and counter operations the workers issue).
#[derive(Debug, Default)]
pub struct Barrier {
    arrived: Cell<u32>,
    round: Cell<u64>,
}

/// Particles simulated (as in the paper).
pub const NUM_PARTICLES: u64 = 50_000;
/// Worker processes (as in the paper).
pub const NUM_WORKERS: u32 = 4;
/// Bytes per particle record.
pub const PARTICLE_BYTES: u64 = 36;
/// Shared segment id used for the particle arrays and cell grid.
pub const SEG: u32 = 0;
/// Shared-segment pages (particles + cells + counters).
pub const SEG_PAGES: u32 = 560;
/// User lock id of the per-step barrier lock.
pub const BARRIER_LOCK: u32 = 0;
/// User lock id guarding the shared cell grid.
pub const CELL_LOCK: u32 = 1;

/// The Mp3d master: creates the shared segment, forks the workers and
/// then waits for them (forever, for the measured horizon).
#[derive(Debug)]
pub struct Mp3dMaster {
    forked: u32,
    state: MasterState,
    barrier: Rc<Barrier>,
    workers: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MasterState {
    Exec,
    Attach,
    Fork,
    Wait,
}

impl Mp3dMaster {
    /// A master with the paper's four workers.
    pub fn new() -> Self {
        Self::with_workers(NUM_WORKERS)
    }

    /// A master forking `workers` workers instead of the paper's
    /// [`NUM_WORKERS`] (the scalability study forks one per CPU).
    pub fn with_workers(workers: u32) -> Self {
        Mp3dMaster {
            forked: 0,
            state: MasterState::Exec,
            barrier: Rc::new(Barrier::default()),
            workers: workers.max(1),
        }
    }
}

impl Default for Mp3dMaster {
    fn default() -> Self {
        Self::new()
    }
}

/// Writes the shared barrier through the snapshot's shared-object
/// registry: the first referencing task writes the contents, later ones
/// just the registry index, so restore reconnects every sibling to one
/// barrier.
fn save_barrier(s: &mut TaskSaver<'_>, b: &Rc<Barrier>) {
    if s.shared_start(Rc::as_ptr(b) as *const ()) {
        s.u32(b.arrived.get());
        s.u64(b.round.get());
    }
}

fn load_barrier(r: &mut TaskRestorer<'_, '_>) -> Result<Rc<Barrier>, SnapError> {
    r.shared_rc(|r| {
        Ok(Barrier {
            arrived: Cell::new(r.u32()?),
            round: Cell::new(r.u64()?),
        })
    })
}

pub(crate) fn restore_master(r: &mut TaskRestorer<'_, '_>) -> Result<Box<dyn UserTask>, SnapError> {
    let forked = r.u32()?;
    let state = match r.u8()? {
        0 => MasterState::Exec,
        1 => MasterState::Attach,
        2 => MasterState::Fork,
        3 => MasterState::Wait,
        _ => return Err(SnapError::Corrupt("mp3d master state")),
    };
    let barrier = load_barrier(r)?;
    let workers = r.u32()?;
    Ok(Box::new(Mp3dMaster {
        forked,
        state,
        barrier,
        workers,
    }))
}

pub(crate) fn restore_worker(r: &mut TaskRestorer<'_, '_>) -> Result<Box<dyn UserTask>, SnapError> {
    use WorkerState::*;
    let id = r.u32()?;
    let state = match r.u8()? {
        0 => Attach,
        1 => BarrierArrive,
        2 => CoordAcq,
        3 => CoordWait,
        4 => CoordRelease,
        5 => WaiterSpin,
        6 => WaiterGotIt,
        7 => MoveChunk { chunk: r.u32()? },
        8 => CellAcq { chunk: r.u32()? },
        9 => CellTouch { chunk: r.u32()? },
        10 => CellRel { chunk: r.u32()? },
        11 => StepEnd,
        _ => return Err(SnapError::Corrupt("mp3d worker state")),
    };
    let barrier = load_barrier(r)?;
    let my_round = r.u64()?;
    let workers = r.u32()?;
    Ok(Box::new(Mp3dWorker {
        id,
        state,
        barrier,
        my_round,
        workers,
    }))
}

impl UserTask for Mp3dMaster {
    fn next(&mut self, _env: &mut TaskEnv<'_>) -> Option<UOp> {
        match self.state {
            MasterState::Exec => {
                self.state = MasterState::Attach;
                Some(UOp::Syscall(SysReq::Exec {
                    image: mp3d_image(),
                }))
            }
            MasterState::Attach => {
                self.state = MasterState::Fork;
                Some(UOp::Syscall(SysReq::ShmAttach {
                    seg: SEG,
                    pages: SEG_PAGES,
                }))
            }
            MasterState::Fork => {
                if self.forked < self.workers {
                    let w = self.forked;
                    self.forked += 1;
                    Some(UOp::Syscall(SysReq::Fork {
                        child: Box::new(Mp3dWorker::with_config(
                            w,
                            Rc::clone(&self.barrier),
                            self.workers,
                        )),
                    }))
                } else {
                    self.state = MasterState::Wait;
                    Some(UOp::Syscall(SysReq::Wait))
                }
            }
            MasterState::Wait => Some(UOp::Syscall(SysReq::Wait)),
        }
    }

    fn name(&self) -> &'static str {
        "mp3d"
    }

    fn save(&self, s: &mut TaskSaver<'_>) -> bool {
        s.u32(self.forked);
        s.u8(match self.state {
            MasterState::Exec => 0,
            MasterState::Attach => 1,
            MasterState::Fork => 2,
            MasterState::Wait => 3,
        });
        save_barrier(s, &self.barrier);
        s.u32(self.workers);
        true
    }
}

/// One Mp3d worker: per timestep, move its quarter of the particles
/// (a read-write sweep), collide them against the shared cell grid, and
/// pass the step barrier. Worker 0 coordinates the barrier: it holds
/// the barrier lock until every worker has arrived, so the others
/// exhaust their 20 spins and call `sginap` — the paper's dominant
/// Multpgm OS operation.
#[derive(Debug)]
pub struct Mp3dWorker {
    id: u32,
    state: WorkerState,
    barrier: Rc<Barrier>,
    my_round: u64,
    workers: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerState {
    Attach,
    BarrierArrive,
    CoordAcq,
    CoordWait,
    CoordRelease,
    WaiterSpin,
    WaiterGotIt,
    MoveChunk { chunk: u32 },
    CellAcq { chunk: u32 },
    CellTouch { chunk: u32 },
    CellRel { chunk: u32 },
    StepEnd,
}

/// Particle chunks per step: each chunk's move phase ends at the shared
/// cell grid, so all four workers keep colliding on the cell lock —
/// which is what drives the paper's sginap-heavy Multpgm profile.
const CHUNKS: u32 = 16;

impl Mp3dWorker {
    /// Worker `id` (0-based) with a private barrier (standalone use).
    pub fn new(id: u32) -> Self {
        Self::with_barrier(id, Rc::new(Barrier::default()))
    }

    /// Worker `id` sharing `barrier` with its siblings, in the paper's
    /// [`NUM_WORKERS`]-way run.
    pub fn with_barrier(id: u32, barrier: Rc<Barrier>) -> Self {
        Self::with_config(id, barrier, NUM_WORKERS)
    }

    /// Worker `id` of a `workers`-way run sharing `barrier`.
    pub fn with_config(id: u32, barrier: Rc<Barrier>, workers: u32) -> Self {
        Mp3dWorker {
            id,
            state: WorkerState::Attach,
            barrier,
            my_round: 0,
            workers: workers.max(1),
        }
    }

    fn my_particles(&self) -> (u64, u64) {
        let per = NUM_PARTICLES / self.workers as u64;
        let base = self.id as u64 * per * PARTICLE_BYTES;
        (base, per * PARTICLE_BYTES)
    }
}

/// Byte offset of the cell grid within the segment (after the particle
/// array).
const CELLS_OFF: u64 = NUM_PARTICLES * PARTICLE_BYTES;
/// Cell grid size in bytes.
const CELLS_BYTES: u64 = 256 * 1024;

impl UserTask for Mp3dWorker {
    fn next(&mut self, env: &mut TaskEnv<'_>) -> Option<UOp> {
        use WorkerState::*;
        match self.state {
            Attach => {
                self.state = MoveChunk { chunk: 0 };
                Some(UOp::Syscall(SysReq::ShmAttach {
                    seg: SEG,
                    pages: SEG_PAGES,
                }))
            }
            BarrierArrive => {
                self.my_round = self.barrier.round.get();
                self.barrier.arrived.set(self.barrier.arrived.get() + 1);
                // A worker running alone (unit tests) opens its own
                // barrier immediately.
                if self.barrier.arrived.get() >= self.workers {
                    self.barrier.arrived.set(0);
                    self.barrier.round.set(self.my_round + 1);
                }
                self.state = if self.id == 0 { CoordAcq } else { WaiterSpin };
                // The arrival count is a hot shared write.
                Some(UOp::write(shm_at(SEG, CELLS_OFF + CELLS_BYTES)))
            }
            CoordAcq => {
                self.state = CoordWait;
                Some(UOp::LockAcq {
                    lock: BARRIER_LOCK,
                    spins: 0,
                })
            }
            CoordWait => {
                if self.barrier.round.get() != self.my_round {
                    self.state = CoordRelease;
                    Some(UOp::read(shm_at(SEG, CELLS_OFF + CELLS_BYTES)))
                } else {
                    // Poll the arrival count while holding the lock.
                    Some(UOp::Compute { cycles: 250 })
                }
            }
            CoordRelease => {
                self.state = MoveChunk { chunk: 0 };
                Some(UOp::LockRel { lock: BARRIER_LOCK })
            }
            WaiterSpin => {
                if self.barrier.round.get() != self.my_round {
                    self.state = MoveChunk { chunk: 0 };
                    return Some(UOp::read(shm_at(SEG, CELLS_OFF + CELLS_BYTES)));
                }
                // Spin on the coordinator-held lock: after 20 failed
                // attempts the library calls sginap, per the paper.
                self.state = WaiterGotIt;
                Some(UOp::LockAcq {
                    lock: BARRIER_LOCK,
                    spins: 0,
                })
            }
            WaiterGotIt => {
                self.state = WaiterSpin;
                Some(UOp::LockRel { lock: BARRIER_LOCK })
            }
            MoveChunk { chunk } => {
                self.state = CellAcq { chunk };
                let (base, len) = self.my_particles();
                let piece = len / CHUNKS as u64;
                // Move phase: read-modify-write sweep of this chunk of
                // the particle records.
                Some(UOp::sweep(
                    shm_at(SEG, base + chunk as u64 * piece),
                    piece,
                    PARTICLE_BYTES as u32,
                    true,
                ))
            }
            CellAcq { chunk } => {
                self.state = CellTouch { chunk };
                Some(UOp::LockAcq {
                    lock: CELL_LOCK,
                    spins: 0,
                })
            }
            CellTouch { chunk } => {
                self.state = CellRel { chunk };
                // Collision computation against the shared grid while
                // the lock is held: long enough that waiters regularly
                // exhaust their 20 spins and call sginap, as the paper
                // observes for Multpgm.
                let off = CELLS_OFF + (env.rng.gen_range(0..CELLS_BYTES / 64 - 8)) * 64;
                Some(UOp::sweep(shm_at(SEG, off), 320, 64, true))
            }
            CellRel { chunk } => {
                self.state = if chunk + 1 >= CHUNKS {
                    StepEnd
                } else {
                    MoveChunk { chunk: chunk + 1 }
                };
                Some(UOp::LockRel { lock: CELL_LOCK })
            }
            StepEnd => {
                self.state = BarrierArrive;
                // Per-step numeric work over the worker's own code.
                Some(UOp::run_loop(
                    text_at(0x400 + (self.id as u64) * 0x800),
                    8 * 1024,
                    env.rng.gen_range(24..64),
                ))
            }
        }
    }

    fn name(&self) -> &'static str {
        "mp3d-worker"
    }

    fn save(&self, s: &mut TaskSaver<'_>) -> bool {
        use WorkerState::*;
        s.u32(self.id);
        match self.state {
            Attach => s.u8(0),
            BarrierArrive => s.u8(1),
            CoordAcq => s.u8(2),
            CoordWait => s.u8(3),
            CoordRelease => s.u8(4),
            WaiterSpin => s.u8(5),
            WaiterGotIt => s.u8(6),
            MoveChunk { chunk } => {
                s.u8(7);
                s.u32(chunk);
            }
            CellAcq { chunk } => {
                s.u8(8);
                s.u32(chunk);
            }
            CellTouch { chunk } => {
                s.u8(9);
                s.u32(chunk);
            }
            CellRel { chunk } => {
                s.u8(10);
                s.u32(chunk);
            }
            StepEnd => s.u8(11),
        }
        save_barrier(s, &self.barrier);
        s.u64(self.my_round);
        s.u32(self.workers);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_os::Pid;
    use oscar_rng::{SeedableRng, SmallRng};

    #[test]
    fn master_forks_four_workers_then_waits() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut master = Mp3dMaster::new();
        let mut forks = 0;
        for _ in 0..20 {
            let mut e = TaskEnv {
                rng: &mut rng,
                pid: Pid(1),
                now: 0,
            };
            match master.next(&mut e) {
                Some(UOp::Syscall(SysReq::Fork { .. })) => forks += 1,
                Some(UOp::Syscall(SysReq::Wait)) => break,
                _ => {}
            }
        }
        assert_eq!(forks, NUM_WORKERS);
    }

    #[test]
    fn workers_partition_the_particle_array() {
        let mut covered = 0;
        for w in 0..NUM_WORKERS {
            let (base, len) = Mp3dWorker::new(w).my_particles();
            assert_eq!(base, w as u64 * len);
            covered += len;
        }
        assert_eq!(covered, (NUM_PARTICLES / 4) * 4 * PARTICLE_BYTES);
    }

    #[test]
    fn worker_cycles_through_barrier_and_move() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut w = Mp3dWorker::new(1);
        let mut locks = 0;
        let mut sweeps = 0;
        for _ in 0..200 {
            let mut e = TaskEnv {
                rng: &mut rng,
                pid: Pid(2),
                now: 0,
            };
            match w.next(&mut e) {
                Some(UOp::LockAcq { .. }) => locks += 1,
                Some(UOp::Sweep { .. }) => sweeps += 1,
                None => panic!("workers run forever"),
                _ => {}
            }
        }
        assert!(locks > 10);
        assert!(sweeps >= 10, "chunked move phase sweeps often");
    }
}
