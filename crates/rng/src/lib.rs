//! # oscar-rng
//!
//! A self-contained deterministic pseudo-random number generator for
//! the oscar workspace: [`SmallRng`] is xoshiro256++ seeded through
//! SplitMix64, exposed behind [`Rng`]/[`SeedableRng`] traits that
//! mirror the subset of the `rand` crate API the simulator uses
//! (`gen_range`, `gen_bool`, `gen_ratio`, `gen`).
//!
//! The workspace deliberately has **zero external dependencies** so the
//! reproduction builds offline with nothing but a Rust toolchain; this
//! crate replaces `rand`. Every stream is fully determined by its
//! 64-bit seed, which is what makes the parallel experiment engine's
//! output byte-identical to serial execution: each process and each
//! experiment derives its own seed, never sharing generator state
//! across threads.
//!
//! ```
//! use oscar_rng::{Rng, SeedableRng, SmallRng};
//!
//! let mut a = SmallRng::seed_from_u64(7);
//! let mut b = SmallRng::seed_from_u64(7);
//! assert_eq!(a.gen_range(0..100u64), b.gen_range(0..100u64));
//! ```

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface (the subset of `rand::Rng` the workspace
/// uses).
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 raw bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// A value of a [`Standard`]-samplable type (full-range integer).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 uniform mantissa bits, exactly representable in f64.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "denominator must be positive");
        assert!(
            numerator <= denominator,
            "ratio {numerator}/{denominator} > 1"
        );
        uniform_below(self, denominator as u64) < numerator as u64
    }
}

/// Uniform sample in `[0, bound)` by widening multiply with rejection
/// (Lemire's method; no modulo bias).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound; // 2^64 mod bound
    loop {
        let m = (rng.next_u64() as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Types samplable over their full range by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Integer types uniform ranges are defined over.
pub trait UniformInt: Copy + PartialOrd {
    /// Offset from `low` as an unsigned 64-bit span.
    fn delta(low: Self, high: Self) -> u64;
    /// `low + delta`, never overflowing for in-range deltas.
    fn offset(low: Self, delta: u64) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn delta(low: Self, high: Self) -> u64 {
                (high as u64).wrapping_sub(low as u64)
            }
            fn offset(low: Self, delta: u64) -> Self {
                (low as u64).wrapping_add(delta) as $t
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_sint {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn delta(low: Self, high: Self) -> u64 {
                (high as i64).wrapping_sub(low as i64) as u64
            }
            fn offset(low: Self, delta: u64) -> Self {
                (low as i64).wrapping_add(delta as i64) as $t
            }
        }
    )*};
}
impl_uniform_sint!(i8, i16, i32, i64, isize);

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        let span = T::delta(self.start, self.end);
        assert!(span > 0, "gen_range called with an empty range");
        T::offset(self.start, uniform_below(rng, span))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range called with an empty range");
        let span = T::delta(low, high);
        if span == u64::MAX {
            return T::offset(low, rng.next_u64());
        }
        T::offset(low, uniform_below(rng, span + 1))
    }
}

/// xoshiro256++: 256 bits of state, period 2^256 − 1, excellent
/// equidistribution — the same generator `rand`'s `SmallRng` uses on
/// 64-bit targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// The raw 256-bit generator state, for snapshot/restore support.
    /// Restoring via [`SmallRng::from_state`] continues the stream
    /// exactly where [`SmallRng::state`] captured it.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by
    /// [`SmallRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        SmallRng { s }
    }

    fn splitmix_next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion: guarantees a non-zero xoshiro state for
        // every seed, including 0.
        let mut sm = seed;
        SmallRng {
            s: [
                Self::splitmix_next(&mut sm),
                Self::splitmix_next(&mut sm),
                Self::splitmix_next(&mut sm),
                Self::splitmix_next(&mut sm),
            ],
        }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// `rand`-compatible module path (`oscar_rng::rngs::SmallRng`).
pub mod rngs {
    pub use crate::SmallRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SmallRng::seed_from_u64(0);
        let v: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
        assert_ne!(v[0], v[1]);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y: i32 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z = r.gen_range(7..8usize);
            assert_eq!(z, 7);
        }
    }

    #[test]
    fn ranges_cover_every_value() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut seen = [false; 16];
        for _ in 0..2_000 {
            seen[r.gen_range(0..16usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn uniformity_is_rough_but_real() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 10.0;
            assert!((c as f64 - expected).abs() < expected * 0.05, "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01, "{hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_ratio_tracks_ratio() {
        let mut r = SmallRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| r.gen_ratio(1, 4)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01, "{hits}");
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut r = SmallRng::seed_from_u64(8);
        let _: u64 = r.gen_range(0..=u64::MAX);
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = SmallRng::seed_from_u64(11);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_samples_integers() {
        let mut r = SmallRng::seed_from_u64(9);
        let a: u64 = r.gen();
        let b: u64 = r.gen();
        assert_ne!(a, b);
        let _: u32 = r.gen();
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
