//! The batched SoA hot path against the retained per-record path: the
//! same materialized pmake trace pushed through the analyzer as
//! 4096-record SoA blocks (`push_block`, the streaming pipeline's
//! production path) versus per-record AoS chunks (`push_chunk`, the
//! differential reference), plus the raw staging cost of the monitor's
//! [`RecordBlock`] columns.

use oscar_bench::{black_box, Harness};

use oscar_core::analyze::{AnalyzeOptions, StreamAnalyzer, TraceMeta};
use oscar_core::{run, ExperimentConfig};
use oscar_machine::monitor::RecordBlock;
use oscar_workloads::WorkloadKind;

const CHUNK: usize = 4096;

fn main() {
    let mut h = Harness::new("soa_micro");

    let art = run(&ExperimentConfig::new(WorkloadKind::Pmake)
        .warmup(45_000_000)
        .measure(12_000_000));
    let meta = TraceMeta::of(&art);
    let opts = AnalyzeOptions {
        online_sweeps: true,
        keep_streams: false,
        ..AnalyzeOptions::default()
    };
    println!(
        "soa: pmake 12M-cycle window, {} records, {}-record chunks",
        art.trace.len(),
        CHUNK
    );

    // Pre-stage the SoA blocks once; the pipeline's ChunkSink does this
    // incrementally at monitor-flush cadence.
    let blocks: Vec<RecordBlock> = art
        .trace
        .chunks(CHUNK)
        .map(|recs| {
            let mut b = RecordBlock::with_capacity(recs.len());
            for &rec in recs {
                b.push(rec);
            }
            b
        })
        .collect();

    h.bench("soa/stage_block_4096", || {
        let mut b = RecordBlock::with_capacity(CHUNK);
        for &rec in &art.trace[..CHUNK] {
            b.push(rec);
        }
        black_box(b.len())
    });

    h.bench("soa/analyze_per_record", || {
        let mut a = StreamAnalyzer::new(meta.clone(), opts.clone());
        for recs in art.trace.chunks(CHUNK) {
            a.push_chunk(recs);
        }
        black_box(a.finish().os.total())
    });

    h.bench("soa/analyze_block", || {
        let mut a = StreamAnalyzer::new(meta.clone(), opts.clone());
        for b in &blocks {
            a.push_block(b);
        }
        black_box(a.finish().os.total())
    });

    h.finish();
}
