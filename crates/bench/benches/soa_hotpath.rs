//! The batched SoA hot path against the retained per-record path: the
//! same materialized pmake trace pushed through the analyzer as
//! 4096-record SoA blocks (`push_block`, the streaming pipeline's
//! production path) versus per-record AoS chunks (`push_chunk`, the
//! differential reference), plus the raw staging cost of the monitor's
//! [`RecordBlock`] columns.

use oscar_bench::{black_box, Harness};

use oscar_core::analyze::{AnalyzeOptions, StreamAnalyzer, TraceMeta};
use oscar_core::pipeline::{run_streaming, StreamOptions};
use oscar_core::{run, ExperimentConfig};
use oscar_machine::monitor::{RecordBlock, RecordFilter};
use oscar_machine::{BlockSelector, BusKind};
use oscar_workloads::WorkloadKind;

const CHUNK: usize = 4096;

fn main() {
    let mut h = Harness::new("soa_micro");

    let art = run(&ExperimentConfig::new(WorkloadKind::Pmake)
        .warmup(45_000_000)
        .measure(12_000_000));
    let meta = TraceMeta::of(&art);
    let opts = AnalyzeOptions {
        online_sweeps: true,
        keep_streams: false,
        ..AnalyzeOptions::default()
    };
    println!(
        "soa: pmake 12M-cycle window, {} records, {}-record chunks",
        art.trace.len(),
        CHUNK
    );

    // Pre-stage the SoA blocks once; the pipeline's ChunkSink does this
    // incrementally at monitor-flush cadence.
    let blocks: Vec<RecordBlock> = art
        .trace
        .chunks(CHUNK)
        .map(|recs| {
            let mut b = RecordBlock::with_capacity(recs.len());
            for &rec in recs {
                b.push(rec);
            }
            b
        })
        .collect();

    h.bench("soa/stage_block_4096", || {
        let mut b = RecordBlock::with_capacity(CHUNK);
        for &rec in &art.trace[..CHUNK] {
            b.push(rec);
        }
        black_box(b.len())
    });

    h.bench("soa/analyze_per_record", || {
        let mut a = StreamAnalyzer::new(meta.clone(), opts.clone());
        for recs in art.trace.chunks(CHUNK) {
            a.push_chunk(recs);
        }
        black_box(a.finish().os.total())
    });

    h.bench("soa/analyze_block", || {
        let mut a = StreamAnalyzer::new(meta.clone(), opts.clone());
        for b in &blocks {
            a.push_block(b);
        }
        black_box(a.finish().os.total())
    });

    // The columnar predicate-pushdown kernel the query row path runs:
    // kind/cpu bitmaps vectorized, addr/time refined only on set lanes.
    let filter = RecordFilter {
        cpus: Some(0b0101),
        kinds: Some(
            RecordFilter::kind_bit(BusKind::Read) | RecordFilter::kind_bit(BusKind::Upgrade),
        ),
        addr: Some((0, 8 << 20)),
        time: None,
    };
    let mut sel = BlockSelector::new(filter);
    h.bench("soa/filter_select_block", || {
        let mut kept = 0usize;
        for b in &blocks {
            kept += black_box(sel.select(b, 0))
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>();
        }
        black_box(kept)
    });

    // Stage-occupancy point: one simulate+analyze run with the analyzer
    // sharded two wide versus serial. The pair is the single-run
    // pipeline's bench anchor; stage rows (below) show where the time
    // in the pipelined run actually sits.
    let cfg = ExperimentConfig::new(WorkloadKind::Pmake)
        .warmup(2_000_000)
        .measure(6_000_000);
    h.bench("soa/stream_serial", || {
        let (a, _) = run_streaming(&cfg, &StreamOptions::default());
        black_box(a.trace_records)
    });
    h.bench("soa/stream_pipelined_x2", || {
        let (a, _) = run_streaming(
            &cfg,
            &StreamOptions {
                shards: 2,
                sweep_workers: 2,
                ..StreamOptions::default()
            },
        );
        black_box(a.trace_records)
    });
    {
        let (a, _) = run_streaming(
            &cfg,
            &StreamOptions {
                shards: 2,
                sweep_workers: 2,
                stage_stats: true,
                ..StreamOptions::default()
            },
        );
        for p in &a.stage_phases {
            let blocked = p.stall_s.unwrap_or(0.0) + p.starve_s.unwrap_or(0.0);
            let occ = if p.wall_s > 0.0 {
                1.0 - blocked / p.wall_s
            } else {
                0.0
            };
            println!(
                "stage {:<18} wall {:>8.4}s occupancy {:>5.1}%",
                p.id,
                p.wall_s,
                occ * 100.0
            );
        }
    }

    h.finish();
}
