//! Section 6, "Implications for Larger Machines": what the paper argues
//! should happen on cluster-based machines (DASH / Paradigm / Gigamax),
//! measured on the simulator's cluster mode.
//!
//! For each machine shape the bench compares the flat OS (single run
//! queue, one kernel-text image — the measured 4D/340 software) against
//! the clustered OS (text replicated per cluster, distributed run
//! queues, first-touch page placement).

use oscar_bench::{black_box, Harness};

use oscar_core::stall::table1_row;
use oscar_core::{analyze, run, ExperimentConfig};
use oscar_os::LockFamily;
use oscar_workloads::WorkloadKind;

fn shape(kind: WorkloadKind, cpus: u8, clusters: u8, clustered_os: bool) -> ExperimentConfig {
    let base = ExperimentConfig::new(kind)
        .warmup(30_000_000)
        .measure(10_000_000);
    if clustered_os {
        base.clustered(cpus, clusters, 30)
    } else {
        base.clustered_machine_flat_os(cpus, clusters, 30)
    }
}

fn main() {
    println!("Section 6 — larger machines (Multpgm)");
    println!(
        "{:>6} {:>9} {:>13} {:>13} {:>12} {:>12}",
        "cpus", "clusters", "os-variant", "remote-fill%", "runqlk-fail%", "os-stall%"
    );
    for (cpus, clusters) in [(4u8, 1u8), (8, 2), (16, 4), (32, 8), (64, 16)] {
        for clustered_os in [false, true] {
            if clusters == 1 && clustered_os {
                continue;
            }
            let art = run(&shape(WorkloadKind::Multpgm, cpus, clusters, clustered_os));
            let an = analyze(&art);
            let remote = 100.0 * art.remote_fills() as f64 / art.total_fills().max(1) as f64;
            let fail = art
                .lock_family(LockFamily::Runqlk)
                .map(|s| 100.0 * s.failed_fraction())
                .unwrap_or(0.0);
            println!(
                "{:>6} {:>9} {:>13} {:>13.2} {:>12.2} {:>12.2}",
                cpus,
                clusters,
                if clustered_os { "clustered" } else { "flat" },
                remote,
                fail,
                table1_row(&art, &an).stall_os_pct
            );
        }
    }

    // Directory/MESI scaling: same weak-scaled workload on the
    // mesi-dir backend, where a banked directory replaces the bus.
    println!();
    println!("Directory backend — weak-scaled Multpgm (mesi-dir)");
    println!(
        "{:>6} {:>14} {:>13} {:>12}",
        "cpus", "dir-requests", "bank-wait", "os-stall%"
    );
    for cpus in [4u8, 8, 16, 32, 64] {
        let mut config = ExperimentConfig::new(WorkloadKind::Multpgm)
            .warmup(30_000_000)
            .measure(10_000_000)
            .scaled_workload(cpus != 4);
        config.machine = oscar_machine::MachineConfig::mesi_dir(cpus);
        let art = run(&config);
        let an = analyze(&art);
        let dir = art.interconnect.dir.unwrap_or_default();
        println!(
            "{:>6} {:>14} {:>13} {:>12.2}",
            cpus,
            dir.requests(),
            dir.bank_wait,
            table1_row(&art, &an).stall_os_pct
        );
    }

    let mut h = Harness::new("larger_machines");
    h.bench("scaling/multpgm_16cpu_4cluster_short", || {
        black_box(run(&ExperimentConfig::new(WorkloadKind::Multpgm)
            .warmup(1_000_000)
            .measure(2_000_000)
            .clustered(16, 4, 30)))
    });
    h.bench("scaling/multpgm_64cpu_mesi_dir_short", || {
        let mut config = ExperimentConfig::new(WorkloadKind::Multpgm)
            .warmup(1_000_000)
            .measure(2_000_000)
            .scaled_workload(true);
        config.machine = oscar_machine::MachineConfig::mesi_dir(64);
        black_box(run(&config))
    });
    h.finish();
}
