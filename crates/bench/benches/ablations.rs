//! Ablation benches for the optimizations the paper proposes
//! (Section 4.2's "Removing ..." subsections and Section 6):
//! cache-affinity scheduling, cache-bypassing block operations, and
//! hot-first kernel code layout.

use oscar_bench::{black_box, Harness};

use oscar_core::stall::{table1_row, table4_row, table6_row};
use oscar_core::{analyze, run, ExperimentConfig};
use oscar_os::{Rid, SchedPolicy, Subsystem};
use oscar_workloads::WorkloadKind;

fn cfg(kind: WorkloadKind) -> ExperimentConfig {
    ExperimentConfig::new(kind)
        .warmup(45_000_000)
        .measure(10_000_000)
}

fn main() {
    // --- affinity scheduling ---
    println!("Ablation: cache-affinity scheduling (Oracle)");
    for policy in [SchedPolicy::FreeMigration, SchedPolicy::Affinity] {
        let mut e = cfg(WorkloadKind::Oracle);
        e.tuning.policy = policy;
        let art = run(&e);
        let an = analyze(&art);
        let r = table4_row(&art, &an);
        println!(
            "  {:14?} migrations {:6}  migration-miss stall {:5.2}%  OS stall {:5.2}%",
            policy,
            art.os_stats.migrations,
            r.stall_pct,
            table1_row(&art, &an).stall_os_pct
        );
    }

    // --- block-op cache bypass ---
    println!("Ablation: cache-bypassing block operations (Pmake)");
    for bypass in [false, true] {
        let mut e = cfg(WorkloadKind::Pmake);
        e.tuning.block_op_bypass = bypass;
        let art = run(&e);
        let an = analyze(&art);
        let r = table6_row(&art, &an);
        println!(
            "  bypass={bypass:5}  block-op misses {:7}  stall {:5.2}%  OS stall {:5.2}%",
            an.blockop_d.total(),
            r.stall_pct,
            table1_row(&art, &an).stall_os_pct
        );
    }

    // --- hot-first code layout ---
    println!("Ablation: hot-first kernel code layout (Pmake)");
    {
        let base = run(&cfg(WorkloadKind::Pmake));
        let an0 = analyze(&base);
        let mut order: Vec<Rid> = Rid::ALL.to_vec();
        order.sort_by_key(|r| matches!(r.subsystem(), Subsystem::Cold));
        let mut e = cfg(WorkloadKind::Pmake);
        e.tuning.layout_order = Some(order);
        let relinked = run(&e);
        let an1 = analyze(&relinked);
        println!(
            "  default layout : Dispos I-misses {:7}  OS I-misses {:7}",
            an0.os.instr.disp_os,
            an0.os.instr.total()
        );
        println!(
            "  hot-first      : Dispos I-misses {:7}  OS I-misses {:7}",
            an1.os.instr.disp_os,
            an1.os.instr.total()
        );
    }

    // Measure the cost of a short ablation run itself.
    let mut h = Harness::new("ablations");
    h.bench("ablations/pmake_short_run", || {
        black_box(run(&ExperimentConfig::new(WorkloadKind::Pmake)
            .warmup(1_000_000)
            .measure(2_000_000)))
    });
    h.finish();
}
