//! Microbenchmarks of the time-parallel substrate: snapshot capture
//! and restore cost, and the state-only pass's throughput edge over
//! fully monitored simulation (the margin the epoch engine's first
//! pass lives on).

use oscar_bench::{black_box, Harness};

use oscar_core::{ExperimentConfig, PreparedRun};
use oscar_machine::snap::{SnapReader, SnapWriter};
use oscar_workloads::WorkloadKind;

/// Simulates `span` cycles from the prepared run's window start with
/// the monitor armed or disarmed, returning the records buffered.
fn run_span(prep: &mut PreparedRun, span: u64, armed: bool) -> usize {
    prep.machine.monitor_mut().set_enabled(armed);
    let horizon = prep.measure_start() + span;
    loop {
        let cpu = prep.machine.earliest_cpu();
        if prep.machine.now(cpu) >= horizon {
            break;
        }
        if !prep.os.step(&mut prep.machine, cpu) {
            break;
        }
    }
    prep.machine.monitor_mut().dump().len()
}

fn main() {
    let mut h = Harness::new("epoch_snapshot");

    // One warmed-up world to freeze and thaw; the span below is long
    // enough that per-iteration work dominates the harness overhead.
    let config = ExperimentConfig::new(WorkloadKind::Pmake)
        .warmup(2_000_000)
        .measure(1_000_000);
    let mut prep = PreparedRun::new(&config, config.workload.build());
    prep.warmup();
    let mut w = SnapWriter::new();
    prep.save_snapshot(&mut w);
    let frozen = w.into_bytes();
    eprintln!("snapshot size: {} bytes", frozen.len());

    h.bench("snapshot/capture", || {
        let mut w = SnapWriter::new();
        prep.save_snapshot(&mut w);
        black_box(w.into_bytes().len())
    });

    h.bench("snapshot/restore", || {
        let mut r = SnapReader::new(&frozen);
        let p = PreparedRun::restore_snapshot(&config, &mut r).expect("restore");
        black_box(p.measure_start())
    });

    // The two passes of the epoch engine over the same 200k-cycle span,
    // each from a fresh thaw so the work is identical: disarmed (pass
    // 1, state only) vs armed (what a worker replays). Their gap is
    // the recording overhead the first pass avoids.
    let span = 200_000u64;
    h.bench("pass/state_only_200k", || {
        let mut r = SnapReader::new(&frozen);
        let mut p = PreparedRun::restore_snapshot(&config, &mut r).expect("restore");
        black_box(run_span(&mut p, span, false))
    });

    h.bench("pass/monitored_200k", || {
        let mut r = SnapReader::new(&frozen);
        let mut p = PreparedRun::restore_snapshot(&config, &mut r).expect("restore");
        black_box(run_span(&mut p, span, true))
    });

    h.finish();
}
