//! Figure 6: OS instruction-miss rate versus I-cache size and
//! associativity, regenerated per workload by trace-driven
//! re-simulation, plus a measurement of the re-simulator itself.

use oscar_bench::{black_box, Harness};

use oscar_core::resim::{figure6_sweep, resim};
use oscar_core::{analyze, run, ExperimentConfig};
use oscar_machine::config::CacheConfig;
use oscar_workloads::WorkloadKind;

fn main() {
    let mut h = Harness::new("fig6_resim");
    for kind in WorkloadKind::ALL {
        let art = run(&ExperimentConfig::new(kind)
            .warmup(45_000_000)
            .measure(12_000_000));
        let an = analyze(&art);
        println!("Figure 6 — {kind} (OS I-misses relative to 64KB direct-mapped)");
        let points = figure6_sweep(&an.istream, art.machine_config.num_cpus as usize);
        let base = points
            .iter()
            .find(|p| p.size_bytes == 64 * 1024 && p.assoc == 1)
            .map(|p| p.os_misses.max(1))
            .unwrap_or(1) as f64;
        for p in &points {
            println!(
                "  {:5} KB {}-way  rel {:6.3}  inval-floor {:6.3}",
                p.size_bytes / 1024,
                p.assoc,
                p.os_misses as f64 / base,
                p.os_inval_misses as f64 / base
            );
        }
        h.bench(&format!("fig6/{kind}/resim_256k_dm"), || {
            black_box(resim(
                black_box(&an.istream),
                4,
                CacheConfig::direct_mapped(256 * 1024),
            ))
        });
    }
    h.finish();
}
