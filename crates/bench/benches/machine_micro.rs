//! Microbenchmarks of the simulator substrate itself: cache probes,
//! TLB lookups, coherence traffic and full-engine stepping throughput.

use oscar_bench::{black_box, Harness};

use oscar_machine::addr::{BlockAddr, CpuId, PAddr, Ppn, Vpn};
use oscar_machine::cache::Cache;
use oscar_machine::config::{CacheConfig, MachineConfig};
use oscar_machine::tlb::Tlb;
use oscar_machine::Machine;
use oscar_os::{OsTuning, OsWorld};

fn main() {
    let mut h = Harness::new("machine_micro");

    {
        let mut cache = Cache::new(CacheConfig::direct_mapped(64 * 1024));
        cache.access(BlockAddr(7), false);
        h.bench("cache/dm_hit", || {
            black_box(cache.access(black_box(BlockAddr(7)), false))
        });
    }
    {
        let mut cache = Cache::new(CacheConfig::direct_mapped(64 * 1024));
        let mut i = 0u64;
        h.bench("cache/dm_conflict_stream", || {
            i = i.wrapping_add(4096);
            black_box(cache.access(BlockAddr(i % (1 << 20)), false))
        });
    }
    {
        let mut cache = Cache::new(CacheConfig::set_associative(256 * 1024, 2));
        let mut i = 0u64;
        h.bench("cache/two_way_mixed", || {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(cache.access(BlockAddr((i >> 20) % (1 << 18)), i & 1 == 0))
        });
    }

    {
        let mut tlb = Tlb::new();
        tlb.insert(Vpn(5), Ppn(9), 1);
        h.bench("tlb/hit", || black_box(tlb.lookup(black_box(Vpn(5)), 1)));
    }
    {
        let mut tlb = Tlb::new();
        let mut v = 0u32;
        h.bench("tlb/miss_insert_cycle", || {
            v = v.wrapping_add(1) % 512;
            if tlb.lookup(Vpn(v), 1).is_none() {
                tlb.insert(Vpn(v), Ppn(v), 1);
            }
        });
    }

    {
        let mut m = Machine::new(MachineConfig::sgi_4d340());
        let mut i = 0u64;
        h.bench("machine/data_access_coherent", || {
            i = i.wrapping_add(1);
            let cpu = CpuId((i % 4) as u8);
            black_box(m.data_access(
                cpu,
                PAddr::new((i * 64) % (16 << 20)),
                i.is_multiple_of(5),
                1,
            ))
        });
    }

    h.bench("engine/pmake_steps_1m_cycles", || {
        let mut m = Machine::new(MachineConfig::sgi_4d340());
        let mut os = OsWorld::new(4, 32 * 1024 * 1024, OsTuning::default());
        for t in oscar_workloads::pmake().tasks {
            os.spawn_initial(t);
        }
        while m.now(m.earliest_cpu()) < 1_000_000 {
            if !os.step_earliest(&mut m) {
                break;
            }
        }
        black_box(m.bus_transactions())
    });

    h.finish();
}
