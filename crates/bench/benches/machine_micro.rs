//! Microbenchmarks of the simulator substrate itself: cache probes,
//! TLB lookups, coherence traffic and full-engine stepping throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use oscar_machine::addr::{BlockAddr, CpuId, PAddr, Ppn, Vpn};
use oscar_machine::cache::Cache;
use oscar_machine::config::{CacheConfig, MachineConfig};
use oscar_machine::tlb::Tlb;
use oscar_machine::Machine;
use oscar_os::{OsTuning, OsWorld};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));
    g.bench_function("dm_hit", |b| {
        let mut cache = Cache::new(CacheConfig::direct_mapped(64 * 1024));
        cache.access(BlockAddr(7), false);
        b.iter(|| black_box(cache.access(black_box(BlockAddr(7)), false)))
    });
    g.bench_function("dm_conflict_stream", |b| {
        let mut cache = Cache::new(CacheConfig::direct_mapped(64 * 1024));
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(4096);
            black_box(cache.access(BlockAddr(i % (1 << 20)), false))
        })
    });
    g.bench_function("two_way_mixed", |b| {
        let mut cache = Cache::new(CacheConfig::set_associative(256 * 1024, 2));
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(cache.access(BlockAddr((i >> 20) % (1 << 18)), i & 1 == 0))
        })
    });
    g.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb");
    g.throughput(Throughput::Elements(1));
    g.bench_function("hit", |b| {
        let mut tlb = Tlb::new();
        tlb.insert(Vpn(5), Ppn(9), 1);
        b.iter(|| black_box(tlb.lookup(black_box(Vpn(5)), 1)))
    });
    g.bench_function("miss_insert_cycle", |b| {
        let mut tlb = Tlb::new();
        let mut v = 0u32;
        b.iter(|| {
            v = v.wrapping_add(1) % 512;
            if tlb.lookup(Vpn(v), 1).is_none() {
                tlb.insert(Vpn(v), Ppn(v), 1);
            }
        })
    });
    g.finish();
}

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    g.throughput(Throughput::Elements(1));
    g.bench_function("data_access_coherent", |b| {
        let mut m = Machine::new(MachineConfig::sgi_4d340());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let cpu = CpuId((i % 4) as u8);
            black_box(m.data_access(cpu, PAddr::new((i * 64) % (16 << 20)), i % 5 == 0, 1))
        })
    });
    g.finish();

    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("pmake_steps_1m_cycles", |b| {
        b.iter_batched(
            || {
                let m = Machine::new(MachineConfig::sgi_4d340());
                let mut os = OsWorld::new(4, 32 * 1024 * 1024, OsTuning::default());
                for t in oscar_workloads::pmake().tasks {
                    os.spawn_initial(t);
                }
                (m, os)
            },
            |(mut m, mut os)| {
                while m.now(m.earliest_cpu()) < 1_000_000 {
                    if !os.step_earliest(&mut m) {
                        break;
                    }
                }
                black_box(m.bus_transactions())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_cache, bench_tlb, bench_machine);
criterion_main!(benches);
