//! Microbenchmarks of the simulator substrate itself: cache probes,
//! TLB lookups, coherence traffic and full-engine stepping throughput.

use oscar_bench::{black_box, Harness};

use oscar_machine::addr::{BlockAddr, CpuId, PAddr, Ppn, Vpn};
use oscar_machine::cache::Cache;
use oscar_machine::config::{CacheConfig, MachineConfig};
use oscar_machine::tlb::Tlb;
use oscar_machine::Machine;
use oscar_os::{OsTuning, OsWorld};

fn main() {
    let mut h = Harness::new("machine_micro");

    {
        let mut cache = Cache::new(CacheConfig::direct_mapped(64 * 1024));
        cache.access(BlockAddr(7), false);
        h.bench("cache/dm_hit", || {
            black_box(cache.access(black_box(BlockAddr(7)), false))
        });
    }
    {
        let mut cache = Cache::new(CacheConfig::direct_mapped(64 * 1024));
        let mut i = 0u64;
        h.bench("cache/dm_conflict_stream", || {
            i = i.wrapping_add(4096);
            black_box(cache.access(BlockAddr(i % (1 << 20)), false))
        });
    }
    {
        // The retained generic model on the same stream as cache/dm_hit:
        // the pair isolates the packed direct-mapped fast path's gain.
        let mut cache = Cache::new_generic(CacheConfig::direct_mapped(64 * 1024));
        cache.access(BlockAddr(7), false);
        h.bench("cache/dm_hit_generic", || {
            black_box(cache.access(black_box(BlockAddr(7)), false))
        });
    }
    {
        let mut cache = Cache::new(CacheConfig::set_associative(256 * 1024, 2));
        let mut i = 0u64;
        h.bench("cache/two_way_mixed", || {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(cache.access(BlockAddr((i >> 20) % (1 << 18)), i & 1 == 0))
        });
    }
    {
        // Same mixed stream through the generic model: isolates the
        // packed two-way representation's gain.
        let mut cache = Cache::new_generic(CacheConfig::set_associative(256 * 1024, 2));
        let mut i = 0u64;
        h.bench("cache/two_way_mixed_generic", || {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(cache.access(BlockAddr((i >> 20) % (1 << 18)), i & 1 == 0))
        });
    }
    {
        // Fill/invalidate round trip on one block: the snoop path's
        // cache-side cost without bus accounting.
        let mut cache = Cache::new(CacheConfig::direct_mapped(64 * 1024));
        h.bench("cache/fill_invalidate_cycle", || {
            cache.fill(BlockAddr(11), false);
            black_box(cache.invalidate(BlockAddr(11)))
        });
    }

    {
        let mut tlb = Tlb::new();
        tlb.insert(Vpn(5), Ppn(9), 1);
        h.bench("tlb/hit", || black_box(tlb.lookup(black_box(Vpn(5)), 1)));
    }
    {
        let mut tlb = Tlb::new();
        let mut v = 0u32;
        h.bench("tlb/miss_insert_cycle", || {
            v = v.wrapping_add(1) % 512;
            if tlb.lookup(Vpn(v), 1).is_none() {
                tlb.insert(Vpn(v), Ppn(v), 1);
            }
        });
    }

    {
        let mut m = Machine::new(MachineConfig::sgi_4d340());
        let mut i = 0u64;
        h.bench("machine/data_access_coherent", || {
            i = i.wrapping_add(1);
            let cpu = CpuId((i % 4) as u8);
            black_box(m.data_access(
                cpu,
                PAddr::new((i * 64) % (16 << 20)),
                i.is_multiple_of(5),
                1,
            ))
        });
    }

    {
        // Two CPUs ping-pong writes to one block: every access is an
        // upgrade-plus-invalidate, the worst case for the snoop path.
        // The presence filter narrows each snoop to the one real sharer.
        let mut m = Machine::new(MachineConfig::sgi_4d340());
        let mut i = 0u64;
        h.bench("machine/snoop_invalidate_pingpong", || {
            i = i.wrapping_add(1);
            let cpu = CpuId((i % 2) as u8);
            black_box(m.data_access(cpu, PAddr::new(0x4000), true, 1))
        });
    }
    {
        // Same ping-pong with the filter disabled: every snoop probes
        // all other CPUs. The pair isolates the filter's gain.
        let mut m = Machine::new(MachineConfig::sgi_4d340());
        m.disable_presence_filter();
        let mut i = 0u64;
        h.bench("machine/snoop_invalidate_brute", || {
            i = i.wrapping_add(1);
            let cpu = CpuId((i % 2) as u8);
            black_box(m.data_access(cpu, PAddr::new(0x4000), true, 1))
        });
    }
    {
        // Straight-line instruction fetch from one block: the memoized
        // ifetch fast path that batched fetches ride on.
        let mut m = Machine::new(MachineConfig::sgi_4d340());
        h.bench("machine/fetch_straightline", || {
            black_box(m.fetch(CpuId(0), PAddr::new(0x1000), 4))
        });
    }

    {
        // Columnar kind-classification kernels, every backend the host
        // supports (scalar reference, SWAR, then SSE2/AVX2 where
        // detected): bitmap select of write-back lanes and a bulk lane
        // count over a 64 KiB kind column with a trace-like mix. The
        // analyzer's block fast path runs the auto-picked backend; the
        // group quantifies what each rung of the ladder buys.
        use oscar_machine::kindscan::{available_backends, count_eq_with, select_eq_any_with};
        use oscar_machine::BusKind;

        let codes: Vec<u8> = {
            let mut x = 0x9e3779b97f4a7c15u64;
            (0..64 * 1024)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    // Roughly trace-shaped: reads dominate, ~1/8
                    // write-backs, the rest split across the others.
                    match x % 16 {
                        0..=8 => BusKind::Read.code(),
                        9..=10 => BusKind::ReadEx.code(),
                        11 => BusKind::Upgrade.code(),
                        12..=13 => BusKind::WriteBack.code(),
                        _ => BusKind::UncachedRead.code(),
                    }
                })
                .collect()
        };
        let wb = [BusKind::WriteBack.code()];
        let mut out = Vec::new();
        for backend in available_backends() {
            h.bench(&format!("kindscan/select_wb_{}", backend.name()), || {
                select_eq_any_with(backend, black_box(&codes), black_box(&wb), &mut out);
                black_box(out.last().copied())
            });
            h.bench(&format!("kindscan/count_read_{}", backend.name()), || {
                black_box(count_eq_with(
                    backend,
                    black_box(&codes),
                    black_box(BusKind::Read.code()),
                ))
            });
        }
    }

    {
        // False-sharing ping-pong: the measured thread increments its
        // counter while a hammer thread increments the neighbouring
        // one. Packed on one cache line, every increment invalidates
        // the other core's copy (the MESI pathology the paper's §5
        // measures for test-and-set locks); padded to private lines
        // via `CachePadded`, the two threads never interfere. The
        // per-worker tallies of the `--jobs` pool and the epoch claim
        // cursor use the padded layout. (On a single-core CI host the
        // pair collapses to scheduler noise; record it anyway.)
        use oscar_core::pad::CachePadded;
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::Arc;

        fn pingpong<P: Send + Sync + 'static>(
            h: &mut Harness,
            id: &str,
            pair: Arc<P>,
            mine: fn(&P) -> &AtomicU64,
            theirs: fn(&P) -> &AtomicU64,
        ) {
            let stop = Arc::new(AtomicBool::new(false));
            let hammer = {
                let pair = Arc::clone(&pair);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        theirs(&pair).fetch_add(1, Ordering::Relaxed);
                    }
                })
            };
            h.bench(id, || mine(&pair).fetch_add(1, Ordering::Relaxed));
            stop.store(true, Ordering::Relaxed);
            hammer.join().expect("hammer thread panicked");
        }

        #[repr(C)]
        #[derive(Default)]
        struct Packed {
            a: AtomicU64,
            b: AtomicU64,
        }
        #[repr(C)]
        #[derive(Default)]
        struct Padded {
            a: CachePadded<AtomicU64>,
            b: CachePadded<AtomicU64>,
        }

        pingpong(
            &mut h,
            "pad/pingpong_packed",
            Arc::new(Packed::default()),
            |p| &p.a,
            |p| &p.b,
        );
        pingpong(
            &mut h,
            "pad/pingpong_padded",
            Arc::new(Padded::default()),
            |p| &p.a.0,
            |p| &p.b.0,
        );
    }

    h.bench("engine/pmake_steps_1m_cycles", || {
        let mut m = Machine::new(MachineConfig::sgi_4d340());
        let mut os = OsWorld::new(4, 32 * 1024 * 1024, OsTuning::default());
        for t in oscar_workloads::pmake().tasks {
            os.spawn_initial(t);
        }
        while m.now(m.earliest_cpu()) < 1_000_000 {
            if !os.step_earliest(&mut m) {
                break;
            }
        }
        black_box(m.bus_transactions())
    });

    h.finish();
}
