//! Regenerates every per-workload table and figure of the paper
//! (Tables 1, 3-7, 9, 10, 12; Figures 1-5, 7-10) and benchmarks the
//! postprocessing pipeline that produces them.
//!
//! The exhibit rows are printed once during setup — that output *is*
//! the reproduction; the harness then measures the analysis cost.

use oscar_bench::{black_box, Harness};

use oscar_core::report;
use oscar_core::{analyze, run, ExperimentConfig, RunArtifacts};
use oscar_workloads::WorkloadKind;

fn traced(kind: WorkloadKind) -> RunArtifacts {
    run(&ExperimentConfig::new(kind)
        .warmup(45_000_000)
        .measure(12_000_000))
}

fn main() {
    let mut h = Harness::new("paper_exhibits");
    for kind in WorkloadKind::ALL {
        let art = traced(kind);
        let an = analyze(&art);
        // The reproduction output.
        println!("{}", report::render_table1(&art, &an));
        println!("{}", report::render_fig1(&art, &an));
        println!("{}", report::render_fig2(&art, &an));
        println!("{}", report::render_fig3(&art, &an));
        println!("{}", report::render_fig4(&art, &an));
        println!("{}", report::render_fig5(&art, &an));
        println!("{}", report::render_fig7(&art, &an));
        println!("{}", report::render_table3(&art));
        println!("{}", report::render_fig8(&art, &an));
        println!("{}", report::render_table4(&art, &an));
        println!("{}", report::render_table5(&art, &an));
        println!("{}", report::render_table6(&art, &an));
        println!("{}", report::render_table7(&art, &an));
        println!("{}", report::render_fig9(&art, &an));
        println!("{}", report::render_table9(&art, &an));
        println!("{}", report::render_fig10(&art, &an));
        println!("{}", report::render_table10(&art));
        println!("{}", report::render_table11());
        println!("{}", report::render_table12(&art));

        h.bench(&format!("postprocess/{kind}/analyze_trace"), || {
            black_box(analyze(black_box(&art)))
        });
        h.bench(&format!("postprocess/{kind}/render_all"), || {
            black_box(report::render_all(black_box(&art), black_box(&an)))
        });
    }
    h.finish();
}
