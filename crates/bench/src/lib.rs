//! # oscar-bench
//!
//! A self-contained benchmark harness (the workspace builds offline
//! with no external dependencies, so Criterion is out) plus one bench
//! per paper exhibit family under `benches/`:
//!
//! * `paper_exhibits` — Tables 1, 3–7, 9–12 and Figures 1–5, 7–10 per
//!   workload, and the cost of the postprocessing that produces them;
//! * `fig6_resim` — the Figure 6 I-cache re-simulation sweep;
//! * `fig11_contention` — lock contention vs CPU count (Figure 11);
//! * `ablations` — affinity scheduling, block-op bypass, hot-first
//!   layout (Section 4.2);
//! * `larger_machines` — the Section 6 cluster-machine sweep;
//! * `machine_micro` — microbenchmarks of the simulator substrate.
//!
//! Every bench prints a human table and writes a `BENCH_<name>.json`
//! summary (same schema as the experiment engine's perf summary — see
//! [`oscar_core::perf`]) so perf baselines are diffable across PRs.
//!
//! Environment knobs:
//!
//! * `OSCAR_BENCH_SAMPLES` — samples per benchmark (default 10);
//! * `OSCAR_BENCH_OUT` — directory for `BENCH_*.json` (default `.`);
//! * `OSCAR_BENCH_FAST` — set to shrink sample counts for smoke runs.

pub use std::hint::black_box;

use std::time::Instant;

use oscar_core::perf::{peak_rss_kb, PerfSummary, PhaseStats};

/// One benchmark's timing result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark identifier (`group/name`).
    pub id: String,
    /// Iterations per sample.
    pub iters: u64,
    /// Samples taken.
    pub samples: u64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
}

/// The harness: times closures, prints a table, writes
/// `BENCH_<name>.json`.
pub struct Harness {
    name: String,
    samples: u64,
    started: Instant,
    results: Vec<BenchResult>,
}

impl Harness {
    /// A harness named `name` (the JSON becomes `BENCH_<name>.json`).
    pub fn new(name: &str) -> Self {
        let fast = std::env::var_os("OSCAR_BENCH_FAST").is_some();
        let samples = std::env::var("OSCAR_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(if fast { 3 } else { 10 });
        Harness {
            name: name.to_string(),
            samples: samples.max(1),
            started: Instant::now(),
            results: Vec::new(),
        }
    }

    /// Times `f`, auto-calibrating iterations per sample so each sample
    /// runs at least ~5 ms (one warm-up call is discarded).
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) {
        // Warm up and calibrate.
        let t0 = Instant::now();
        black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1) as u64;
        let target_ns = 5_000_000u64;
        let iters = (target_ns / once_ns).clamp(1, 1 << 20);
        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        let mut total_ns = 0.0f64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let per = t.elapsed().as_nanos() as f64 / iters as f64;
            min_ns = min_ns.min(per);
            max_ns = max_ns.max(per);
            total_ns += per;
        }
        let r = BenchResult {
            id: id.to_string(),
            iters,
            samples: self.samples,
            mean_ns: total_ns / self.samples as f64,
            min_ns,
            max_ns,
        };
        eprintln!(
            "bench {:40} {:>12.1} ns/iter  (min {:.1}, max {:.1}, {} iters x {} samples)",
            r.id, r.mean_ns, r.min_ns, r.max_ns, r.iters, r.samples
        );
        self.results.push(r);
    }

    /// Prints the summary and writes `BENCH_<name>.json` into
    /// `OSCAR_BENCH_OUT` (or the current directory).
    pub fn finish(self) {
        let mut summary = PerfSummary::new(&self.name, 1);
        for r in &self.results {
            summary.phases.push(PhaseStats {
                id: r.id.clone(),
                wall_s: r.mean_ns * r.iters as f64 * r.samples as f64 / 1e9,
                cycles: 0,
                records: r.iters * r.samples,
                ..PhaseStats::default()
            });
        }
        summary.wall_s = self.started.elapsed().as_secs_f64();
        summary.peak_rss_kb = peak_rss_kb();
        let dir = std::env::var("OSCAR_BENCH_OUT").unwrap_or_else(|_| ".".to_string());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.name));
        match std::fs::write(&path, summary.to_json()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
        eprintln!("{}", summary.human_line());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_and_records() {
        std::env::set_var("OSCAR_BENCH_SAMPLES", "2");
        let mut h = Harness::new("unit-test");
        let mut x = 0u64;
        h.bench("noop", || {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(h.results.len(), 1);
        let r = &h.results[0];
        assert!(r.mean_ns >= 0.0);
        assert!(r.min_ns <= r.max_ns);
        assert!(r.iters >= 1);
        std::env::remove_var("OSCAR_BENCH_SAMPLES");
    }
}
